// Package memctrl implements the host-side memory controller of the paper's
// Table 2: per-bank request queues drained by an FR-FCFS scheduler (Rixner
// et al., ISCA'00), plus the subarray-aware locality-aware scheduling (LAS)
// variant ReCross adds (§4.1): row-buffer hits first, then requests that
// activate an idle subarray, and only then requests that conflict with an
// open row.
//
// The controller is the single mutator of a dram.Channel: it picks, at every
// step, the highest-priority command that can issue at the earliest possible
// cycle, exactly emulating a per-cycle "issue the highest-priority ready
// command" loop but skipping idle cycles.
//
// Two implementations share that contract:
//
//   - Reference is the original scheduler: every pick scans all banks and
//     re-issues Earliest* timing queries for each candidate — O(banks) per
//     command. It is kept as the correctness oracle.
//   - Controller.Drain is the fast arbiter: per-bank candidates live in
//     lazy min-heaps keyed by earliest issue time, invalidated by the
//     timing-edge epochs dram.Channel exports, with row-hit column streams
//     coalesced into uninterruptible runs — O(log banks) per command.
//
// The two are bit-identical: the differential fuzzer in this package
// asserts equal Result and dram.Stats over both policies, SALP on/off,
// writes, and op windows, so the optimization is invisible to every paper
// figure.
package memctrl

import (
	"fmt"

	"recross/internal/dram"
	"recross/internal/sim"
)

// Policy selects the scheduling algorithm.
type Policy int

const (
	// FRFCFS is first-ready, first-come-first-served: row hits first,
	// then oldest.
	FRFCFS Policy = iota
	// LAS is ReCross's locality-aware scheduling: row hits first, then
	// activations of idle subarrays (interleaving SALP accesses), then
	// row conflicts; oldest-first within a class.
	LAS
)

// Request asks for one embedding vector: Cols consecutive burst columns
// starting at Loc, delivered to Consumer. Vectors never straddle a DRAM row
// (the allocator aligns them, as production allocators do).
type Request struct {
	Loc      dram.Loc
	Cols     int
	Consumer dram.Consumer
	// Write marks a host-sourced embedding update (online training):
	// the columns are written rather than read.
	Write bool
	// Arrival is when the request (its NMP instruction or host command)
	// becomes visible to the controller.
	Arrival sim.Cycle
	// Op tags the embedding operation the vector belongs to, for stats.
	Op int32
}

// Result reports the outcome of draining a request list.
type Result struct {
	// Finish is the cycle the last data burst is fully delivered.
	Finish sim.Cycle
	// Done holds the per-request completion cycle, indexed as the input.
	Done []sim.Cycle
	// RowHits counts requests served entirely from open row buffers;
	// RowMisses counts requests that needed at least one activation.
	RowHits, RowMisses int64
	// OpLatency holds, per distinct Op tag in order of first appearance,
	// the span from the op's first request arrival to its last data
	// delivery — the per-operation serving latency.
	OpLatency []sim.Cycle
}

// Controller drains request lists through one DRAM channel using the fast
// event-driven arbiter (see the package comment; Reference is the scan
// oracle). Like the dram.Channel it mutates, a Controller is single-
// goroutine: Drain may not be called concurrently, and its scratch state
// is reused across calls so steady-state drains allocate only the returned
// Result slices.
type Controller struct {
	ch     *dram.Channel
	policy Policy
	window int

	// InflightLimit caps how many requests occupy the controller's
	// request queue simultaneously (Table 2: 64 entries). A slot frees
	// when its request's data is delivered; the next request is admitted
	// in arrival order. This is what couples load imbalance to latency:
	// a backlogged hot bank holds slots and starves the rest of the
	// channel — the §3.1 effect.
	InflightLimit int

	// OpWindowLimit caps how many embedding operations may be in flight
	// at once (0 = unlimited). The PEs track in-flight ops with the
	// 1-bit batchTag of the 82-bit instruction (§4.2), so only a couple
	// of ops can be open per PE; this window is what turns *per-op* load
	// imbalance (Fig. 4) into end-to-end slowdown — a hot node serving 5
	// of an op's lookups delays that op's completion and stalls the
	// window. Requests must be supplied in nondecreasing Op order.
	OpWindowLimit int

	// WriteHighWatermark controls write batching: writes are deferred
	// behind reads until this many are pending, then drained in a burst
	// down to WriteLowWatermark — the standard policy that amortizes the
	// tWTR read/write turnaround. Zero selects the defaults (16/2);
	// set WriteHighWatermark to 1 to interleave writes eagerly.
	WriteHighWatermark int
	WriteLowWatermark  int

	// Fast-arbiter scratch, reused across Drain calls under the
	// single-goroutine contract (see fast.go).
	fbanks   []fastBank
	free     *fnode
	rheap    entryHeap
	wheap    entryHeap
	dirty    []int32
	opOrder  []int32
	opStartM map[int32]sim.Cycle
	opEndM   map[int32]sim.Cycle
	opLeftM  map[int32]int

	// Reference-scheduler scratch (see reference.go).
	refWrites []refWCand
}

// DefaultWindow is the per-bank lookahead of the request queue.
const DefaultWindow = 16

// DefaultInflight is the controller queue depth of the paper's Table 2.
const DefaultInflight = 64

// New builds a controller over ch. window limits how deep into each bank's
// queue the scheduler searches for row hits (FR part of FR-FCFS).
func New(ch *dram.Channel, policy Policy, window int) (*Controller, error) {
	if ch == nil {
		return nil, fmt.Errorf("memctrl: nil channel")
	}
	if window <= 0 {
		return nil, fmt.Errorf("memctrl: window must be positive, got %d", window)
	}
	return &Controller{ch: ch, policy: policy, window: window, InflightLimit: DefaultInflight}, nil
}

// Channel returns the controller's channel (for stats inspection).
func (c *Controller) Channel() *dram.Channel { return c.ch }

// Drain issues every request and returns completion statistics. The input
// slice is not modified. Requests must be valid for the channel's geometry.
func (c *Controller) Drain(reqs []Request) (Result, error) {
	return c.fastDrain(reqs)
}

// validate performs the shared request-list geometry checks.
func (c *Controller) validate(reqs []Request) error {
	geo := c.ch.Geo
	for i := range reqs {
		r := &reqs[i]
		if err := geo.CheckLoc(r.Loc); err != nil {
			return fmt.Errorf("memctrl: request %d: %w", i, err)
		}
		if r.Cols <= 0 || r.Loc.Col+r.Cols > geo.ColumnsPerRow() {
			return fmt.Errorf("memctrl: request %d: %d columns at col %d exceed the row", i, r.Cols, r.Loc.Col)
		}
	}
	return nil
}
