package serve

import (
	"net/http"
	"testing"
)

// discardWriter is a header-only ResponseWriter so the measurement sees
// WriteJSON's own allocations, not net/http's.
type discardWriter struct{ h http.Header }

func (w *discardWriter) Header() http.Header         { return w.h }
func (w *discardWriter) Write(p []byte) (int, error) { return len(p), nil }
func (w *discardWriter) WriteHeader(int)             {}

// TestWriteJSONAllocFlat: the pooled encode buffer makes the lookup
// handler's hot path allocation-flat — a response two orders of
// magnitude larger must not cost more steady-state allocations than a
// tiny one, because the body bytes live in the recycled buffer.
func TestWriteJSONAllocFlat(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	small := LookupResponse{Vectors: [][]float32{{1, 2}}, BatchSize: 1}
	large := LookupResponse{BatchSize: 1, Vectors: make([][]float32, 32)}
	for i := range large.Vectors {
		large.Vectors[i] = make([]float32, 256)
		for j := range large.Vectors[i] {
			large.Vectors[i][j] = float32(i*256+j) * 0.317
		}
	}
	measure := func(v any) float64 {
		w := &discardWriter{h: make(http.Header)}
		for i := 0; i < 20; i++ { // warm the pool past the large body size
			WriteJSON(w, 0, v)
		}
		return testing.AllocsPerRun(200, func() { WriteJSON(w, 0, v) })
	}
	as, al := measure(small), measure(large)
	if al > as+8 {
		t.Errorf("large response costs %.1f allocs/op vs %.1f small — encode buffer not pooled", al, as)
	}
	if al > 32 {
		t.Errorf("large response costs %.1f allocs/op, want a small constant", al)
	}
}
