package trace

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCriteoKaggleSpec(t *testing.T) {
	m := CriteoKaggle(64, 80)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(m.Tables) != 26 {
		t.Fatalf("tables = %d, want 26", len(m.Tables))
	}
	if m.Tables[2].Rows != 8000000 {
		t.Fatalf("C3 rows = %d, want 8000000", m.Tables[2].Rows)
	}
	// The model must be multi-GB scale at veclen 64 (paper: embedding
	// layers dominate model size).
	if m.TotalBytes() < 5<<30 {
		t.Fatalf("total bytes = %d, implausibly small", m.TotalBytes())
	}
	// Skews vary across tables.
	seen := map[float64]bool{}
	for _, tb := range m.Tables {
		seen[tb.Skew] = true
	}
	if len(seen) < 5 {
		t.Fatalf("expected varied skews, got %d distinct", len(seen))
	}
}

func TestCriteoTerabyteLargerThanKaggle(t *testing.T) {
	k := CriteoKaggle(64, 80)
	tb := CriteoTerabyte(64, 80)
	if err := tb.Validate(); err != nil {
		t.Fatal(err)
	}
	if tb.TotalBytes() <= k.TotalBytes() {
		t.Fatal("terabyte spec should be larger than kaggle")
	}
	for _, tab := range tb.Tables {
		if tab.Rows > 40_000_000 {
			t.Fatalf("table %s exceeds the 40M hashing cap: %d", tab.Name, tab.Rows)
		}
	}
}

func TestTableSpecValidate(t *testing.T) {
	bad := []TableSpec{
		{Name: "r", Rows: 0, VecLen: 64, Pooling: 1},
		{Name: "v", Rows: 10, VecLen: 0, Pooling: 1},
		{Name: "p", Rows: 10, VecLen: 64, Pooling: 0},
		{Name: "pr", Rows: 10, VecLen: 64, Pooling: 1, Prob: 1.5},
		{Name: "s", Rows: 10, VecLen: 64, Pooling: 1, Skew: -1},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %q should fail validation", s.Name)
		}
	}
	if err := (ModelSpec{Name: "empty"}).Validate(); err == nil {
		t.Error("empty model should fail validation")
	}
}

func TestZipfSkewConcentratesMass(t *testing.T) {
	z, err := NewZipf(100000, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	const n = 200000
	inTop1pct := 0
	for i := 0; i < n; i++ {
		if z.Rank(rng) < 1000 {
			inTop1pct++
		}
	}
	frac := float64(inTop1pct) / n
	// With alpha 1.1 over 100k elements, the top 1% of ranks should absorb
	// well over half the accesses — the paper's long-tail phenomenon.
	if frac < 0.5 {
		t.Fatalf("top-1%% coverage = %.3f, want skewed (> 0.5)", frac)
	}
	// And the analytic CDF should roughly agree with the empirical draw.
	if a := z.CDF(1000); math.Abs(a-frac) > 0.05 {
		t.Fatalf("analytic CDF %.3f vs empirical %.3f", a, frac)
	}
}

func TestZipfUniform(t *testing.T) {
	z, err := NewZipf(1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += float64(z.Rank(rng))
	}
	mean := sum / n
	if math.Abs(mean-499.5) > 10 {
		t.Fatalf("uniform mean = %.1f, want ~499.5", mean)
	}
	if z.CDF(500) != 0.5 {
		t.Fatalf("uniform CDF(500) = %g, want 0.5", z.CDF(500))
	}
}

func TestZipfRankInBounds(t *testing.T) {
	f := func(seed int64, alphaRaw uint8, nRaw uint16) bool {
		n := int64(nRaw%5000) + 1
		alpha := float64(alphaRaw) / 100 // 0 .. 2.55
		z, err := NewZipf(n, alpha)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 100; i++ {
			r := z.Rank(rng)
			if r < 0 || r >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestZipfErrors(t *testing.T) {
	if _, err := NewZipf(0, 1); err == nil {
		t.Error("zero universe should error")
	}
	if _, err := NewZipf(10, -0.5); err == nil {
		t.Error("negative alpha should error")
	}
}

func TestScatterIsBijection(t *testing.T) {
	for _, n := range []int64{1, 2, 3, 97, 100, 1024, 5000} {
		s, err := NewScatter(n, 99)
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[int64]bool, n)
		for i := int64(0); i < n; i++ {
			v := s.Map(i)
			if v < 0 || v >= n {
				t.Fatalf("n=%d: Map(%d)=%d out of range", n, i, v)
			}
			if seen[v] {
				t.Fatalf("n=%d: Map(%d)=%d collides", n, i, v)
			}
			seen[v] = true
		}
	}
}

func TestScatterDeterministic(t *testing.T) {
	a, _ := NewScatter(1000, 5)
	b, _ := NewScatter(1000, 5)
	c, _ := NewScatter(1000, 6)
	same, diff := true, false
	for i := int64(0); i < 1000; i++ {
		if a.Map(i) != b.Map(i) {
			same = false
		}
		if a.Map(i) != c.Map(i) {
			diff = true
		}
	}
	if !same {
		t.Fatal("same seed should give same permutation")
	}
	if !diff {
		t.Fatal("different seeds should give different permutations")
	}
}

func TestScatterOutOfRangePanics(t *testing.T) {
	s, _ := NewScatter(10, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Map should panic")
		}
	}()
	s.Map(10)
}

func TestNextPrime(t *testing.T) {
	cases := map[int64]int64{1: 2, 2: 2, 3: 3, 4: 5, 90: 97, 100: 101, 7919: 7919}
	for in, want := range cases {
		if got := nextPrime(in); got != want {
			t.Errorf("nextPrime(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	spec := Uniform(3, 1000, 16, 4)
	g1, err := NewGenerator(spec, 11)
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := NewGenerator(spec, 11)
	b1 := g1.Batch(5)
	b2 := g2.Batch(5)
	if len(b1) != 5 || len(b2) != 5 {
		t.Fatal("batch size wrong")
	}
	for i := range b1 {
		for j := range b1[i] {
			for k := range b1[i][j].Indices {
				if b1[i][j].Indices[k] != b2[i][j].Indices[k] {
					t.Fatal("same seed produced different traces")
				}
				if b1[i][j].Weights[k] != b2[i][j].Weights[k] {
					t.Fatal("same seed produced different weights")
				}
			}
		}
	}
}

func TestGeneratorShapeAndBounds(t *testing.T) {
	spec := CriteoKaggle(64, 8)
	g, err := NewGenerator(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	b := g.Batch(4)
	// Small tables are one-hot (pooling 1); large tables pool 8.
	want := 0
	for _, tab := range spec.Tables {
		want += 4 * tab.Pooling
	}
	if got := b.Lookups(); got != want {
		t.Fatalf("lookups = %d, want %d", got, want)
	}
	if spec.Tables[8].Pooling != 1 || spec.Tables[2].Pooling != 8 {
		t.Fatalf("pooling split wrong: tiny=%d large=%d",
			spec.Tables[8].Pooling, spec.Tables[2].Pooling)
	}
	for _, s := range b {
		if len(s) != 26 {
			t.Fatalf("sample accesses %d tables, want 26", len(s))
		}
		for _, op := range s {
			rows := spec.Tables[op.Table].Rows
			for k, idx := range op.Indices {
				if idx < 0 || idx >= rows {
					t.Fatalf("table %d index %d out of [0,%d)", op.Table, idx, rows)
				}
				w := op.Weights[k]
				if w < 0.5 || w >= 1.5 {
					t.Fatalf("weight %g out of [0.5,1.5)", w)
				}
			}
		}
	}
}

func TestGeneratorProbSkipsTables(t *testing.T) {
	spec := Uniform(1, 100, 8, 2)
	spec.Tables[0].Prob = 0
	g, err := NewGenerator(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Batch(10).Lookups(); got != 0 {
		t.Fatalf("prob-0 table generated %d lookups", got)
	}
}

func TestGeneratorProfileSkew(t *testing.T) {
	spec := ModelSpec{Name: "m", Tables: []TableSpec{
		{Name: "hot", Rows: 100000, VecLen: 16, Pooling: 10, Prob: 1, Skew: 1.2},
	}}
	g, err := NewGenerator(spec, 5)
	if err != nil {
		t.Fatal(err)
	}
	cdfs, err := g.Profile(2000)
	if err != nil {
		t.Fatal(err)
	}
	// Paper Fig. 3: under 20% of rows absorb the vast majority of accesses.
	if cov := cdfs[0].At(0.20); cov < 0.8 {
		t.Fatalf("top-20%% coverage = %.3f, want long tail (> 0.8)", cov)
	}
}

func TestGeneratorScattersHotRows(t *testing.T) {
	// The hottest rows must not cluster at low indices: scatter should
	// spread them through the address space (low spatial locality).
	spec := ModelSpec{Name: "m", Tables: []TableSpec{
		{Name: "t", Rows: 1 << 20, VecLen: 16, Pooling: 10, Prob: 1, Skew: 1.1},
	}}
	g, err := NewGenerator(spec, 9)
	if err != nil {
		t.Fatal(err)
	}
	g.Batch(200)
	hot := g.Histograms()[0].HotKeys(50)
	inLowHalf := 0
	for _, k := range hot {
		if k < 1<<19 {
			inLowHalf++
		}
	}
	if inLowHalf < 10 || inLowHalf > 40 {
		t.Fatalf("hot keys in low half = %d/50, want roughly balanced", inLowHalf)
	}
}

func BenchmarkGeneratorBatch(b *testing.B) {
	spec := CriteoKaggle(64, 80)
	g, err := NewGenerator(spec, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Batch(32)
	}
}
