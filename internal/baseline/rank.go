package baseline

import (
	"fmt"

	"recross/internal/arch"
	"recross/internal/cache"
	"recross/internal/dram"
	"recross/internal/memctrl"
	"recross/internal/sim"
	"recross/internal/trace"
)

// TensorDIMM is the rank-level NMP of Kwon et al. (MICRO'19): one PE per
// rank in the DIMM buffer, with *vertical* partitioning — every embedding
// vector is striped across all ranks, so each lookup activates every rank
// on a slice of the vector. Perfectly load-balanced by construction, but
// each lookup costs an activation in every rank.
type TensorDIMM struct {
	cfg Config
	geo dram.Geometry
	lay *layout
}

// NewTensorDIMM builds the architecture.
func NewTensorDIMM(cfg Config) (*TensorDIMM, error) {
	cfg = cfg.withDefaults()
	geo := cfg.geometry()
	lay, err := newLayout(cfg.Spec, geo)
	if err != nil {
		return nil, err
	}
	return &TensorDIMM{cfg: cfg, geo: geo, lay: lay}, nil
}

// Name implements arch.System.
func (t *TensorDIMM) Name() string { return "tensordimm" }

// Run implements arch.System.
func (t *TensorDIMM) Run(b trace.Batch) (*arch.RunStats, error) {
	ranks := t.geo.Ranks
	sliceBursts := t.lay.bursts / ranks
	wholeSlice := sliceBursts >= 1
	if !wholeSlice {
		sliceBursts = 1 // vector shorter than one burst per rank
	}
	var reqs []memctrl.Request
	var lookups, ops int64
	var opID int32
	var seq int64
	instr := arch.InstrCycles(dram.NMPTwoStage, t.lay.bursts)
	for _, s := range b {
		for _, op := range s {
			op = arch.DedupOp(op)
			for _, idx := range op.Indices {
				lookups++
				slot := t.lay.slot(op.Table, idx)
				arrival := sim.Cycle(seq) * instr
				if wholeSlice {
					// One slice per rank, identical in-rank coordinates.
					for r := 0; r < ranks; r++ {
						loc, err := arch.Stripe(t.geo, rankBanks(t.geo, r), slot, sliceBursts)
						if err != nil {
							return nil, err
						}
						reqs = append(reqs, memctrl.Request{
							Loc: loc, Cols: sliceBursts,
							Consumer: dram.ToRankPE, Arrival: arrival, Op: opID,
						})
					}
				} else {
					// Sub-burst vectors degrade to one rank per lookup.
					r := int(slot % int64(ranks))
					loc, err := arch.Stripe(t.geo, rankBanks(t.geo, r), slot/int64(ranks), sliceBursts)
					if err != nil {
						return nil, err
					}
					reqs = append(reqs, memctrl.Request{
						Loc: loc, Cols: sliceBursts,
						Consumer: dram.ToRankPE, Arrival: arrival, Op: opID,
					})
				}
				seq++
			}
			ops++
			opID++
		}
	}
	spec := arch.ChannelSpec{Geo: t.geo, Tm: t.cfg.Tm, Mode: dram.NMPTwoStage, Policy: memctrl.FRFCFS, OpWindow: arch.NMPOpWindow}
	// Each op's result is the concatenation of the rank slices: one vector.
	finish, st, res, err := arch.RunChannel(spec, reqs, int(ops)*t.lay.bursts)
	if err != nil {
		return nil, err
	}
	return finishRun(t.cfg, t.geo, finish, st, res, lookups, 0, 0,
		t.lay.vecLen, append([]int64(nil), st.PerRankRDs...), 0), nil
}

// RecNMP is the rank-level NMP of Liu et al. (ISCA'20): one PE per rank,
// *horizontal* partitioning — each vector lives wholly in one rank — plus a
// 1 MB per-PE cache holding hot embedding vectors (§3.1, §5.1).
type RecNMP struct {
	cfg    Config
	geo    dram.Geometry
	lay    *layout
	caches []*cache.Cache
	name   string
	// tree enables FAFNIR-style in-buffer reduction across ranks: the
	// per-rank partial sums fold in a rank reduction tree, so only one
	// result vector per op crosses the channel DQ.
	tree bool
}

// RecNMPCacheBytes is the per-rank-PE cache size the paper configures.
const RecNMPCacheBytes = 1 << 20

// NewRecNMP builds the architecture.
func NewRecNMP(cfg Config) (*RecNMP, error) {
	cfg = cfg.withDefaults()
	geo := cfg.geometry()
	lay, err := newLayout(cfg.Spec, geo)
	if err != nil {
		return nil, err
	}
	r := &RecNMP{cfg: cfg, geo: geo, lay: lay, name: "recnmp"}
	line := uint64(lay.bursts * geo.BurstBytes)
	for i := 0; i < geo.Ranks; i++ {
		c, err := cache.New(RecNMPCacheBytes, line, 8)
		if err != nil {
			return nil, fmt.Errorf("baseline: recnmp cache: %w", err)
		}
		r.caches = append(r.caches, c)
	}
	return r, nil
}

// NewRankNMP builds a generic cache-less rank-level NMP (horizontal
// partitioning) — the "rank level" row of the paper's Figs. 4 and 5, which
// isolates raw memory-level parallelism from RecNMP's cache.
func NewRankNMP(cfg Config) (*RecNMP, error) {
	cfg = cfg.withDefaults()
	geo := cfg.geometry()
	lay, err := newLayout(cfg.Spec, geo)
	if err != nil {
		return nil, err
	}
	return &RecNMP{cfg: cfg, geo: geo, lay: lay, name: "rank-nmp"}, nil
}

// NewFAFNIR builds the rank-reduction-tree NMP of Asgari et al. (HPCA'21,
// the paper's §6): rank-level PEs as in RecNMP (without its cache), plus an
// in-buffer tree that folds all rank partial sums, so a single result
// vector per op crosses the channel DQ regardless of the rank count.
func NewFAFNIR(cfg Config) (*RecNMP, error) {
	cfg = cfg.withDefaults()
	geo := cfg.geometry()
	lay, err := newLayout(cfg.Spec, geo)
	if err != nil {
		return nil, err
	}
	return &RecNMP{cfg: cfg, geo: geo, lay: lay, name: "fafnir", tree: true}, nil
}

// Name implements arch.System.
func (r *RecNMP) Name() string { return r.name }

// Run implements arch.System.
func (r *RecNMP) Run(b trace.Batch) (*arch.RunStats, error) {
	ranks := int64(r.geo.Ranks)
	var reqs []memctrl.Request
	var lookups, hits, psums int64
	var opID int32
	var seq int64
	instr := arch.InstrCycles(dram.NMPTwoStage, r.lay.bursts)
	vecBytes := uint64(r.lay.bursts * r.geo.BurstBytes)
	opRanks := make([]bool, r.geo.Ranks)
	for _, s := range b {
		for _, op := range s {
			op = arch.DedupOp(op)
			for i := range opRanks {
				opRanks[i] = false
			}
			for _, idx := range op.Indices {
				lookups++
				slot := r.lay.slot(op.Table, idx)
				rank := int(slot % ranks)
				opRanks[rank] = true
				if r.caches != nil && r.caches[rank].Access(uint64(slot)*vecBytes) {
					hits++ // served from the PE's local cache
					continue
				}
				loc, err := arch.Stripe(r.geo, rankBanks(r.geo, rank), slot/ranks, r.lay.bursts)
				if err != nil {
					return nil, err
				}
				reqs = append(reqs, memctrl.Request{
					Loc: loc, Cols: r.lay.bursts,
					Consumer: dram.ToRankPE,
					Arrival:  sim.Cycle(seq) * instr, Op: opID,
				})
				seq++
			}
			// Each rank that contributed gathers flushes one partial sum
			// per op; the host (or FAFNIR's tree) folds them.
			for _, touched := range opRanks {
				if touched {
					psums++
				}
			}
			opID++
		}
	}
	spec := arch.ChannelSpec{Geo: r.geo, Tm: r.cfg.Tm, Mode: dram.NMPTwoStage, Policy: memctrl.FRFCFS, OpWindow: arch.NMPOpWindow}
	resultBursts := int(psums) * r.lay.bursts
	if r.tree {
		// The rank tree folds psums in the buffer: one result per op.
		resultBursts = int(opID) * r.lay.bursts
	}
	finish, st, res, err := arch.RunChannel(spec, reqs, resultBursts)
	if err != nil {
		return nil, err
	}
	return finishRun(r.cfg, r.geo, finish, st, res, lookups, hits, psums,
		r.lay.vecLen, append([]int64(nil), st.PerRankRDs...), peCacheHitNano), nil
}
