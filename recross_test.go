package recross

import "testing"

func miniSpec() ModelSpec {
	spec := ModelSpec{Name: "facade-mini"}
	for i := 0; i < 3; i++ {
		spec.Tables = append(spec.Tables, TableSpec{
			Name: spec.Name + string(rune('a'+i)), Rows: 50000, VecLen: 64,
			Pooling: 4, Prob: 1, Skew: 1.1,
		})
	}
	return spec
}

func TestNewSystemAllArches(t *testing.T) {
	profile, err := NewProfile(miniSpec(), 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Spec: miniSpec(), Profile: profile, ProfileSamples: 100}
	gen, err := NewGenerator(miniSpec(), 2)
	if err != nil {
		t.Fatal(err)
	}
	b := gen.Batch(2)
	for _, a := range Arches() {
		sys, err := NewSystem(a, cfg)
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		if sys.Name() != string(a) {
			t.Fatalf("name %q != arch %q", sys.Name(), a)
		}
		stats, err := sys.Run(b)
		if err != nil {
			t.Fatalf("%s run: %v", a, err)
		}
		if stats.Cycles <= 0 {
			t.Fatalf("%s: no cycles", a)
		}
	}
}

func TestNewSystemErrors(t *testing.T) {
	if _, err := NewSystem("bogus", Config{Spec: miniSpec()}); err == nil {
		t.Fatal("unknown arch should error")
	}
	if _, err := NewSystem(CPU, Config{}); err == nil {
		t.Fatal("empty spec should error")
	}
}

func TestFacadeWorkloads(t *testing.T) {
	k := CriteoKaggle(64, 80)
	if len(k.Tables) != 26 {
		t.Fatalf("kaggle tables = %d", len(k.Tables))
	}
	tb := CriteoTerabyte(64, 80)
	if tb.TotalBytes() <= k.TotalBytes() {
		t.Fatal("terabyte not larger than kaggle")
	}
	if ChannelBytes(2) != 32<<30 {
		t.Fatalf("2-rank channel = %d bytes, want 32 GiB", ChannelBytes(2))
	}
}

func TestFacadeReCrossInternals(t *testing.T) {
	rc, err := NewReCross(DefaultReCrossConfig(miniSpec()))
	if err != nil {
		t.Fatal(err)
	}
	if len(rc.Regions()) != 3 {
		t.Fatal("want three regions")
	}
	layer, err := NewLayer(miniSpec())
	if err != nil {
		t.Fatal(err)
	}
	gen, _ := NewGenerator(miniSpec(), 5)
	out, err := rc.ReduceBatch(layer, gen.Batch(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || len(out[0]) != 3 {
		t.Fatalf("reduce shape wrong: %d samples", len(out))
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{Spec: miniSpec()}.withDefaults()
	if c.Ranks != 2 || c.Batch != 32 || c.ProfileSamples != 2000 || c.ProfileSeed != 12345 {
		t.Fatalf("defaults wrong: %+v", c)
	}
}

func TestNewSystemMultiChannel(t *testing.T) {
	cfg := Config{Spec: miniSpec(), Channels: 3, ProfileSamples: 100}
	sys, err := NewSystem(ReCross, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gen, _ := NewGenerator(miniSpec(), 2)
	b := gen.Batch(2)
	multi, err := sys.Run(b)
	if err != nil {
		t.Fatal(err)
	}
	single, err := NewSystem(ReCross, Config{Spec: miniSpec(), ProfileSamples: 100})
	if err != nil {
		t.Fatal(err)
	}
	one, err := single.Run(b)
	if err != nil {
		t.Fatal(err)
	}
	if multi.Cycles >= one.Cycles {
		t.Fatalf("3 channels (%d cycles) not faster than 1 (%d)", multi.Cycles, one.Cycles)
	}
}
