package adapt

import (
	"fmt"
	"math"
	"sync"
	"time"

	"recross/internal/nmp"
	"recross/internal/partition"
	"recross/internal/trace"
)

// Options configures a Controller.
type Options struct {
	// Spec is the workload (required).
	Spec trace.ModelSpec
	// Baseline is the profile the current placement was solved for
	// (required).
	Baseline *partition.Profile
	// Decision is the currently deployed partitioning (required).
	Decision *partition.Decision
	// Batch is the batch size the replanner optimizes for (required).
	Batch int

	// TopK and SampleEvery configure the frequency tracker.
	TopK        int
	SampleEvery int

	// Interval is the control-window length for the background loop
	// started by Start (default 2s). Step may also be called manually —
	// tests drive the loop deterministically that way.
	Interval time.Duration
	// Threshold is the drift score that counts a window as drifted
	// (default 0.12).
	Threshold float64
	// Windows is how many consecutive drifted windows fire the replanner
	// (default 2).
	Windows int
	// Cooldown is the minimum time between adoptions (default 30s).
	Cooldown time.Duration
	// MinGain is the minimum predicted speedup (OldT/NewT - 1) a plan
	// must clear (default 0.05).
	MinGain float64
	// AmortizeBatches is the horizon over which a plan's per-batch gain
	// must repay its migration cost (default 10000).
	AmortizeBatches int64
	// MinSamples is the minimum observed (post-thinning, post-decay)
	// sample count before the replanner trusts the sketches (default 200).
	MinSamples int64
	// Greedy selects the crude partitioner instead of the LP (the
	// ReCross-Base ablation; default false = SolveLP).
	Greedy bool

	// Adopt deploys an accepted (profile, decision) pair — typically
	// staging serve.Server system updates. Required for adoption;
	// nil runs the loop in observe-only mode (drift metrics, no action).
	Adopt func(prof *partition.Profile, dec *partition.Decision) error
	// ServiceCycles, when non-nil, returns the cumulative count and sum
	// of the serving layer's per-batch simulated service cycles; the
	// controller differences consecutive windows to report the realized
	// (as opposed to estimated) gain of an adoption.
	ServiceCycles func() (count int64, sum float64)
	// ColdHealthy, when non-nil, probes the storage tier's health before
	// a plan that demotes DRAM rows to the cold tier is adopted: while it
	// reports false the demotion is paused (rejected with ColdPaused
	// counted) so hot rows are not migrated onto a degraded device.
	// Promotion-only and DRAM-only plans adopt regardless.
	ColdHealthy func() bool
}

func (o Options) withDefaults() Options {
	if o.TopK == 0 {
		o.TopK = 512
	}
	if o.SampleEvery == 0 {
		o.SampleEvery = 1
	}
	if o.Interval == 0 {
		o.Interval = 2 * time.Second
	}
	if o.Threshold == 0 {
		o.Threshold = 0.12
	}
	if o.Windows == 0 {
		o.Windows = 2
	}
	if o.Cooldown == 0 {
		o.Cooldown = 30 * time.Second
	}
	if o.MinGain == 0 {
		o.MinGain = 0.05
	}
	if o.AmortizeBatches == 0 {
		o.AmortizeBatches = 10000
	}
	if o.MinSamples == 0 {
		o.MinSamples = 200
	}
	return o
}

// StepResult reports one control window.
type StepResult struct {
	Drift Drift
	// Replanned is set when the drift fired and a fresh solve ran.
	Replanned bool
	// Plan is the priced migration when Replanned (nil otherwise).
	Plan *Plan
	// Adopted is set when the plan passed the hysteresis gate and the
	// Adopt callback succeeded.
	Adopted bool
	// Err carries a replan/adopt failure (the loop keeps running).
	Err error
}

// Controller is the online control loop: observe → detect → replan →
// gate → adopt. Create with NewController; Observe is safe for
// concurrent use (it is the serving hot path), everything else is
// serialized by the controller's own goroutine or the caller's manual
// Step calls.
type Controller struct {
	opts    Options
	tracker *Tracker

	mu             sync.Mutex // guards the control-loop state below
	detector       *Detector
	current        *partition.Decision
	adoptedProfile *partition.Profile // nil until first adoption

	lastAdopt     time.Time
	prevSvcCount  int64
	prevSvcSum    float64
	preAdoptMean  float64 // windowed service-cycle mean just before adoption
	awaitRealized bool

	metrics Metrics

	stop chan struct{}
	done chan struct{}
}

// NewController validates opts and builds the loop (not yet started).
func NewController(opts Options) (*Controller, error) {
	opts = opts.withDefaults()
	if opts.Baseline == nil || opts.Decision == nil {
		return nil, fmt.Errorf("adapt: baseline profile and decision required")
	}
	if opts.Batch <= 0 {
		return nil, fmt.Errorf("adapt: batch %d <= 0", opts.Batch)
	}
	tracker, err := NewTracker(opts.Spec, TrackerOptions{TopK: opts.TopK, SampleEvery: opts.SampleEvery})
	if err != nil {
		return nil, err
	}
	det, err := NewDetector(opts.Baseline, opts.Threshold, opts.Windows)
	if err != nil {
		return nil, err
	}
	return &Controller{
		opts:     opts,
		tracker:  tracker,
		detector: det,
		current:  opts.Decision,
	}, nil
}

// Observe feeds one served sample into the tracker (hot path).
func (c *Controller) Observe(s trace.Sample) { c.tracker.Observe(s) }

// Tracker exposes the frequency tracker (for benchmarks and tests).
func (c *Controller) Tracker() *Tracker { return c.tracker }

// Current returns the deployed decision (post-adoption it is the adopted
// one) — the supervisor's rebuild path applies it to replacement
// replicas so a restart does not resurrect a stale mapping.
func (c *Controller) Current() (*partition.Profile, *partition.Decision) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.adoptedProfile != nil {
		return c.adoptedProfile, c.current
	}
	return c.opts.Baseline, c.current
}

// Start launches the background loop at the configured interval.
func (c *Controller) Start() {
	c.mu.Lock()
	if c.stop != nil {
		c.mu.Unlock()
		return
	}
	c.stop = make(chan struct{})
	c.done = make(chan struct{})
	stop, done := c.stop, c.done
	c.mu.Unlock()
	go func() {
		defer close(done)
		t := time.NewTicker(c.opts.Interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				c.Step()
			case <-stop:
				return
			}
		}
	}()
}

// Stop halts the background loop (idempotent; safe if never started).
func (c *Controller) Stop() {
	c.mu.Lock()
	stop, done := c.stop, c.done
	c.stop, c.done = nil, nil
	c.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// Step runs one control window synchronously: score drift, maybe replan,
// gate, maybe adopt, then decay the sketches. Tests call it directly for
// a deterministic loop; the background goroutine calls it on a ticker.
func (c *Controller) Step() StepResult {
	c.mu.Lock()
	defer c.mu.Unlock()

	var res StepResult
	c.metrics.Windows++

	// Windowed service-cycle mean (for realized-gain accounting).
	winMean := c.serviceWindowMean()

	snaps := c.tracker.Snapshot()
	dr, err := c.detector.Observe(snaps)
	if err != nil {
		res.Err = err
		c.metrics.Errors++
		return res
	}
	res.Drift = dr
	c.metrics.DriftScore = dr.Score
	c.metrics.DriftKS = dr.KS

	if c.awaitRealized && winMean > 0 {
		if c.preAdoptMean > 0 {
			c.metrics.RealizedGain = c.preAdoptMean / winMean
		}
		c.awaitRealized = false
	}

	if dr.Fired {
		c.metrics.Triggers++
		res = c.replan(res, snaps, winMean)
	}

	c.tracker.Decay()
	return res
}

// replan solves under the live profile and applies the hysteresis gate.
// Called with c.mu held.
func (c *Controller) replan(res StepResult, snaps []TableSnapshot, winMean float64) StepResult {
	if n := c.tracker.Samples(); n < c.opts.MinSamples {
		// Not enough live evidence to trust a solve; keep watching.
		c.metrics.Skipped++
		return res
	}
	prof, err := c.tracker.Profile()
	if err != nil {
		res.Err = err
		c.metrics.Errors++
		return res
	}
	solve := partition.SolveLP
	if c.opts.Greedy {
		solve = partition.Greedy
	}
	next, err := solve(prof, c.current.Regions, c.opts.Batch)
	if err != nil {
		res.Err = fmt.Errorf("adapt: replan solve: %w", err)
		c.metrics.Errors++
		return res
	}
	// Price the incumbent under the live traffic's identity, not just its
	// shape — a permuted hot set looks identical to a shape-based estimate.
	shares, err := c.detector.SegShares(snaps)
	if err != nil {
		res.Err = err
		c.metrics.Errors++
		return res
	}
	plan, err := PlanMigration(prof, c.current, next, c.opts.Batch, shares)
	if err != nil {
		res.Err = err
		c.metrics.Errors++
		return res
	}
	res.Replanned = true
	res.Plan = plan
	c.metrics.Replans++
	c.metrics.LastSpeedup = plan.Speedup

	cooled := time.Since(c.lastAdopt) >= c.opts.Cooldown || c.lastAdopt.IsZero()
	if !plan.Worthwhile(c.opts.MinGain, c.opts.AmortizeBatches) || !cooled {
		c.metrics.Rejected++
		return res
	}
	if c.opts.Adopt == nil {
		c.metrics.Rejected++
		return res
	}
	// With a cold tier in play, diff the placements to count rows
	// crossing the DRAM/cold boundary — row-fraction deltas cannot see a
	// permutation that swaps whole populations across it. Diffed before
	// adoption so the demotion count can gate it: while the storage tier
	// is degraded, demoting DRAM-resident rows onto the failing device
	// would convert today's slow path into tomorrow's failure path, so
	// such plans wait for the scrubber to declare the device healthy.
	var coldPromoted, coldDemoted int64
	coldDiffed := false
	if hasColdRegion(next.Regions) {
		oldProf := c.adoptedProfile
		if oldProf == nil {
			oldProf = c.opts.Baseline
		}
		oldPl, err1 := partition.Build(oldProf, c.current)
		newPl, err2 := partition.Build(prof, next)
		if err1 == nil && err2 == nil {
			coldPromoted, coldDemoted = partition.DiffCold(oldPl, newPl)
			coldDiffed = true
		}
		if coldDiffed && coldDemoted > 0 && c.opts.ColdHealthy != nil && !c.opts.ColdHealthy() {
			c.metrics.ColdPaused++
			c.metrics.Rejected++
			return res
		}
	}
	if err := c.opts.Adopt(prof, next); err != nil {
		res.Err = fmt.Errorf("adapt: adoption: %w", err)
		c.metrics.Errors++
		return res
	}
	res.Adopted = true
	c.metrics.Adoptions++
	c.metrics.RowsMigrated += plan.RowsMoved
	c.metrics.BytesMigrated += plan.BytesMoved
	if coldDiffed {
		plan.ColdPromotedRows, plan.ColdDemotedRows = coldPromoted, coldDemoted
		c.metrics.ColdPromotedRows += coldPromoted
		c.metrics.ColdDemotedRows += coldDemoted
	}
	c.metrics.EstimatedGain = plan.Speedup
	c.lastAdopt = time.Now()
	c.preAdoptMean = winMean
	c.awaitRealized = true

	// The adopted profile becomes the new baseline: drift is henceforth
	// measured against what is actually deployed. The sketches restart
	// empty — their counts straddle the drift that forced this change, and
	// the next replan must price pure post-adoption traffic.
	det, err := NewDetector(prof, c.opts.Threshold, c.opts.Windows)
	if err == nil {
		c.detector = det
	}
	c.tracker.Reset()
	c.adoptedProfile = prof
	c.current = next
	return res
}

// hasColdRegion reports whether any region is the flash cold tier.
func hasColdRegion(regions []partition.Region) bool {
	for _, r := range regions {
		if r.Level == nmp.LevelCold {
			return true
		}
	}
	return false
}

// serviceWindowMean differences the serving layer's cumulative service
// cycles into this window's mean cycles per batch (0 when unavailable or
// the window served nothing). Called with c.mu held.
func (c *Controller) serviceWindowMean() float64 {
	if c.opts.ServiceCycles == nil {
		return 0
	}
	count, sum := c.opts.ServiceCycles()
	dc, ds := count-c.prevSvcCount, sum-c.prevSvcSum
	c.prevSvcCount, c.prevSvcSum = count, sum
	if dc <= 0 {
		return 0
	}
	return ds / float64(dc)
}

// Metrics is the control loop's counters and gauges. Snapshot with
// Controller.Metrics; rendered for /metrics by Expo.
type Metrics struct {
	// Windows counts control windows evaluated.
	Windows int64
	// Triggers counts windows where the drift detector fired.
	Triggers int64
	// Replans counts solves run after a trigger.
	Replans int64
	// Adoptions counts plans that passed the gate and deployed.
	Adoptions int64
	// Rejected counts plans killed by the hysteresis gate (insufficient
	// gain, unamortized migration cost, or cooldown).
	Rejected int64
	// Skipped counts triggers ignored for lack of observed samples.
	Skipped int64
	// Errors counts solve/adoption failures.
	Errors int64
	// RowsMigrated and BytesMigrated accumulate adopted plans' volumes.
	RowsMigrated  int64
	BytesMigrated int64
	// ColdPromotedRows and ColdDemotedRows accumulate adopted plans' rows
	// crossing the DRAM/cold boundary (zero without a cold tier).
	ColdPromotedRows int64
	ColdDemotedRows  int64
	// ColdPaused counts demoting plans rejected because the storage tier
	// was degraded when they came up for adoption (also in Rejected).
	ColdPaused int64
	// DriftScore and DriftKS are the latest window's values.
	DriftScore float64
	DriftKS    float64
	// LastSpeedup is the latest plan's predicted speedup (adopted or not).
	LastSpeedup float64
	// EstimatedGain is the last adopted plan's predicted speedup;
	// RealizedGain is the measured pre/post windowed service-cycle ratio
	// for that adoption (0 until one full post-adoption window passes).
	EstimatedGain float64
	RealizedGain  float64
	// SamplesObserved is the tracker's live (decayed) sample count.
	SamplesObserved int64
}

// Metrics snapshots the loop's counters.
func (c *Controller) Metrics() Metrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := c.metrics
	m.SamplesObserved = c.tracker.Samples()
	return m
}

// Expo renders the adapt series in Prometheus text exposition format;
// the serving layer appends it to /metrics via serve.RegisterExpo.
func (c *Controller) Expo() string {
	m := c.Metrics()
	var b []byte
	counter := func(name string, v int64) {
		b = append(b, fmt.Sprintf("# TYPE %s counter\n%s %d\n", name, name, v)...)
	}
	gauge := func(name string, v float64) {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			v = 0
		}
		b = append(b, fmt.Sprintf("# TYPE %s gauge\n%s %g\n", name, name, v)...)
	}
	counter("recross_adapt_windows_total", m.Windows)
	counter("recross_adapt_triggers_total", m.Triggers)
	counter("recross_adapt_replans_total", m.Replans)
	counter("recross_adapt_repartitions_total", m.Adoptions)
	counter("recross_adapt_rejected_total", m.Rejected)
	counter("recross_adapt_skipped_total", m.Skipped)
	counter("recross_adapt_errors_total", m.Errors)
	counter("recross_adapt_rows_migrated_total", m.RowsMigrated)
	counter("recross_adapt_bytes_migrated_total", m.BytesMigrated)
	counter("recross_adapt_cold_promoted_rows_total", m.ColdPromotedRows)
	counter("recross_adapt_cold_demoted_rows_total", m.ColdDemotedRows)
	counter("recross_adapt_cold_paused_total", m.ColdPaused)
	gauge("recross_adapt_drift_score", m.DriftScore)
	gauge("recross_adapt_drift_ks", m.DriftKS)
	gauge("recross_adapt_last_speedup", m.LastSpeedup)
	gauge("recross_adapt_estimated_gain", m.EstimatedGain)
	gauge("recross_adapt_realized_gain", m.RealizedGain)
	gauge("recross_adapt_samples_observed", float64(m.SamplesObserved))
	return string(b)
}
