package serve

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"recross/internal/arch"
	"recross/internal/chaos"
	"recross/internal/trace"
)

// freshFake returns a Rebuild factory producing clean (fault-free,
// chaos-wrapped so counters stay shared) replicas.
func freshFake(inj *chaos.Injector) func(id int) (arch.System, error) {
	return func(id int) (arch.System, error) {
		return chaos.Wrap(&fakeSys{}, chaos.Config{}, id, inj), nil
	}
}

// TestReplicaErrorUnwraps: every ReplicaError must be identifiable via
// the sentinel.
func TestReplicaErrorUnwraps(t *testing.T) {
	err := error(&ReplicaError{Replica: 3, Fault: FailureWedge, Cause: errors.New("x")})
	if !errors.Is(err, ErrReplicaFailure) {
		t.Fatal("ReplicaError does not unwrap to ErrReplicaFailure")
	}
	if s := err.Error(); !strings.Contains(s, "replica 3") || !strings.Contains(s, "wedge") {
		t.Errorf("unhelpful error string %q", s)
	}
}

// TestPanicFailover: a scheduled replica panic must be recovered, the
// request retried on the sibling, and the replica restarted — the caller
// never sees an error.
func TestPanicFailover(t *testing.T) {
	inj := chaos.NewInjector()
	cfg := chaos.Config{Schedule: []chaos.Rule{{Replica: 0, Batch: 1, Kind: chaos.Panic}}}
	s := newTestServer(t, Options{
		Systems: []arch.System{
			chaos.Wrap(&fakeSys{}, cfg, 0, inj),
			chaos.Wrap(&fakeSys{}, cfg, 1, inj),
		},
		MaxBatch:       1,
		MaxDelay:       time.Hour,
		Rebuild:        freshFake(inj),
		RestartBackoff: time.Millisecond,
	})
	defer s.Close()

	res, err := s.Lookup(context.Background(), testSamples(t, 1)[0])
	if err != nil {
		t.Fatalf("lookup across a replica panic: %v", err)
	}
	if res.Replica != 1 || res.Retries != 1 || res.Degraded {
		t.Errorf("result replica=%d retries=%d degraded=%v, want 1/1/false",
			res.Replica, res.Retries, res.Degraded)
	}
	if got := s.Metrics().FaultPanics.Load(); got != 1 {
		t.Errorf("panic faults = %d, want 1", got)
	}
	if got := s.Metrics().Retries.Load(); got != 1 {
		t.Errorf("retries = %d, want 1", got)
	}
	waitUntil(t, func() bool {
		return s.Metrics().Restarts.Load() >= 1 && s.AvailableReplicas() == 2
	})
}

// TestCorruptRetry: corrupted run stats must be detected and discarded,
// never served; the request retries on the sibling.
func TestCorruptRetry(t *testing.T) {
	inj := chaos.NewInjector()
	cfg := chaos.Config{Schedule: []chaos.Rule{{Replica: 0, Batch: 1, Kind: chaos.Corrupt}}}
	s := newTestServer(t, Options{
		Systems: []arch.System{
			chaos.Wrap(&fakeSys{}, cfg, 0, inj),
			chaos.Wrap(&fakeSys{}, cfg, 1, inj),
		},
		MaxBatch:       1,
		MaxDelay:       time.Hour,
		Rebuild:        freshFake(inj),
		RestartBackoff: time.Millisecond,
	})
	defer s.Close()

	res, err := s.Lookup(context.Background(), testSamples(t, 1)[0])
	if err != nil {
		t.Fatalf("lookup across a corrupt result: %v", err)
	}
	if res.Replica != 1 || res.Retries != 1 || res.ServiceCycles < 0 {
		t.Errorf("result replica=%d retries=%d cycles=%d; corrupt stats leaked",
			res.Replica, res.Retries, res.ServiceCycles)
	}
	if got := s.Metrics().FaultCorrupt.Load(); got != 1 {
		t.Errorf("corrupt faults = %d, want 1", got)
	}
	waitUntil(t, func() bool { return s.Metrics().Restarts.Load() >= 1 })
}

// TestWedgeDegraded: with a single replica, a wedged batch must be
// abandoned at WedgeTimeout and the request answered degraded (no other
// replica to retry on); the replica is then rebuilt and serves again.
func TestWedgeDegraded(t *testing.T) {
	inj := chaos.NewInjector()
	defer inj.ReleaseWedges()
	cfg := chaos.Config{Schedule: []chaos.Rule{{Replica: 0, Batch: 1, Kind: chaos.Wedge}}}
	s := newTestServer(t, Options{
		Systems:        []arch.System{chaos.Wrap(&fakeSys{}, cfg, 0, inj)},
		MaxBatch:       1,
		MaxDelay:       time.Hour,
		Rebuild:        freshFake(inj),
		WedgeTimeout:   10 * time.Millisecond,
		RestartBackoff: time.Millisecond,
	})
	defer s.Close()

	res, err := s.Lookup(context.Background(), testSamples(t, 1)[0])
	if err != nil {
		t.Fatalf("lookup across a wedged replica: %v", err)
	}
	if !res.Degraded || res.Replica != -1 {
		t.Errorf("result degraded=%v replica=%d, want degraded functional answer",
			res.Degraded, res.Replica)
	}
	if got := s.Metrics().FaultWedges.Load(); got != 1 {
		t.Errorf("wedge faults = %d, want 1", got)
	}

	// The supervisor swaps in a rebuilt System; the next request is served
	// by the timing model again.
	waitUntil(t, func() bool { return s.AvailableReplicas() == 1 })
	res, err = s.Lookup(context.Background(), testSamples(t, 1)[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded || res.Replica != 0 {
		t.Errorf("post-restart result degraded=%v replica=%d, want normal service",
			res.Degraded, res.Replica)
	}
	if got := s.Metrics().Restarts.Load(); got != 1 {
		t.Errorf("restarts = %d, want 1", got)
	}
}

// TestRestartCapDeadQuorum: a replica that fails every restart must be
// declared dead after RestartCap attempts; with Quorum above the
// survivor count the server enters degraded mode — visible in /healthz
// semantics and the Prometheus rendering — while still answering.
func TestRestartCapDeadQuorum(t *testing.T) {
	inj := chaos.NewInjector()
	broken := chaos.Config{Rates: chaos.Rates{Panic: 1}}
	s := newTestServer(t, Options{
		Systems: []arch.System{
			chaos.Wrap(&fakeSys{}, broken, 0, inj),
			chaos.Wrap(&fakeSys{}, chaos.Config{}, 1, inj),
		},
		MaxBatch: 1,
		MaxDelay: time.Hour,
		Rebuild: func(id int) (arch.System, error) {
			if id == 0 {
				return chaos.Wrap(&fakeSys{}, broken, 0, inj), nil // still broken
			}
			return chaos.Wrap(&fakeSys{}, chaos.Config{}, id, inj), nil
		},
		RestartBackoff: time.Millisecond,
		RestartCap:     2,
		MaxRetries:     1,
		Quorum:         2,
	})
	defer s.Close()

	// Drive load until replica 0 exhausts its restart budget. Every
	// request must still be answered (retried on replica 1 or degraded).
	sample := testSamples(t, 1)[0]
	deadline := time.Now().Add(10 * time.Second)
	for s.replicas[0].State() != Dead {
		if time.Now().After(deadline) {
			t.Fatalf("replica 0 not dead after 10s; health %+v", s.Health())
		}
		if _, err := s.Lookup(context.Background(), sample); err != nil {
			t.Fatalf("lookup during replica death spiral: %v", err)
		}
	}

	if !s.Degraded() {
		t.Error("server not degraded with 1 of 2 replicas below quorum 2")
	}
	res, err := s.Lookup(context.Background(), sample)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded {
		t.Error("below-quorum lookup not flagged Degraded")
	}

	h := s.Health()
	if h.Status != "degraded" || h.Available != 1 {
		t.Errorf("health status=%q available=%d, want degraded/1", h.Status, h.Available)
	}
	if st := h.Replicas[0].State; st != "dead" {
		t.Errorf("replica 0 state %q, want dead", st)
	}
	expo := h.Expo()
	for _, want := range []string{
		`recross_replica_state{replica="0"} 3`,
		"recross_replicas_available 1",
		"recross_degraded_mode 1",
	} {
		if !strings.Contains(expo, want) {
			t.Errorf("health exposition missing %q:\n%s", want, expo)
		}
	}
}

// TestDefaultTimeout: a request arriving without a deadline must be
// bounded by Options.DefaultTimeout so a stuck pool cannot hold the
// caller forever (satellite of the -request-timeout flag).
func TestDefaultTimeout(t *testing.T) {
	gate := make(chan struct{})
	fake := &fakeSys{gate: gate}
	s := newTestServer(t, Options{
		Systems:        []arch.System{fake},
		MaxBatch:       1,
		MaxDelay:       time.Hour,
		DefaultTimeout: 30 * time.Millisecond,
	})

	start := time.Now()
	_, err := s.Lookup(context.Background(), testSamples(t, 1)[0])
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded from the server-side default", err)
	}
	if elapsed < 30*time.Millisecond {
		t.Errorf("returned after %v, before the 30ms default deadline", elapsed)
	}
	close(gate)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestChaosAcceptance is the acceptance scenario: a 4-replica server
// under concurrent load while panics, wedges, corruptions and latency
// spikes are injected (scripted faults guarantee every kind fires; rates
// add noise on top). The server must never crash, answer every request
// normally or with Result.Degraded set, restart the failed replicas, and
// return to full health once injection stops — with the recovery visible
// in the metrics. Run with -race.
func TestChaosAcceptance(t *testing.T) {
	const replicas = 4
	inj := chaos.NewInjector()
	defer inj.ReleaseWedges()
	cfg := chaos.Config{
		Rates: chaos.Rates{Panic: 0.03, Wedge: 0.01, Corrupt: 0.03, Latency: 0.08},
		Stall: 100 * time.Microsecond,
		Schedule: []chaos.Rule{
			{Replica: 0, Batch: 2, Kind: chaos.Panic},
			{Replica: 1, Batch: 2, Kind: chaos.Wedge},
			{Replica: 2, Batch: 2, Kind: chaos.Corrupt},
		},
		Seed: 7,
	}
	var systems []arch.System
	for i := 0; i < replicas; i++ {
		systems = append(systems, chaos.Wrap(&fakeSys{}, cfg, i, inj))
	}
	var gen atomic.Int64
	layer := testLayer(t)
	s := newTestServer(t, Options{
		Systems:  systems,
		Layer:    layer,
		MaxBatch: 4,
		MaxDelay: 200 * time.Microsecond,
		// Rebuilt replicas keep probabilistic injection (same shared
		// injector) but drop the scripted rules, which would otherwise
		// re-fire on every rebuilt wrapper and keep the pool from healing,
		// and advance the seed per rebuild so an incarnation never replays
		// its predecessor's fault sequence (a stream that faults on batch 1
		// would otherwise fault on batch 1 forever and bury the replica).
		Rebuild: func(id int) (arch.System, error) {
			rates := chaos.Config{Rates: cfg.Rates, Stall: cfg.Stall,
				Seed: cfg.Seed + replicas*gen.Add(1)}
			return chaos.Wrap(&fakeSys{}, rates, id, inj), nil
		},
		WedgeTimeout:   15 * time.Millisecond,
		RestartBackoff: time.Millisecond,
		RestartCap:     50,
		MaxRetries:     2,
	})

	var issued, degraded atomic.Int64
	lookup := func(sample trace.Sample) {
		res, err := s.Lookup(context.Background(), sample)
		if err != nil {
			t.Errorf("lookup under chaos: %v", err)
			return
		}
		issued.Add(1)
		if res.Degraded {
			degraded.Add(1)
		}
		want, err := layer.ReduceSample(sample)
		if err != nil {
			t.Error(err)
			return
		}
		if !reflect.DeepEqual(res.Vectors, want) {
			t.Errorf("result vectors differ from the functional layer (degraded=%v replica=%d)",
				res.Degraded, res.Replica)
		}
	}

	// Phase 1: concurrent load under active injection.
	const clients, perClient = 6, 30
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			g, err := trace.NewGenerator(testSpec(), int64(500+c))
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < perClient; i++ {
				lookup(g.Sample())
			}
		}(c)
	}
	wg.Wait()

	snap := s.Metrics().Snapshot()
	if snap.FaultPanics < 1 || snap.FaultWedges < 1 || snap.FaultCorrupt < 1 {
		t.Errorf("scripted faults did not all fire: panics=%d wedges=%d corrupt=%d",
			snap.FaultPanics, snap.FaultWedges, snap.FaultCorrupt)
	}
	if snap.Restarts < 1 {
		t.Errorf("restarts = %d, want > 0 (self-healing never ran)", snap.Restarts)
	}

	// Phase 2: stop injection and drive light traffic until every replica
	// is healthy again (restarting replicas need a rebuild, suspect ones a
	// served batch to clear probation).
	inj.SetEnabled(false)
	inj.ReleaseWedges()
	g, err := trace.NewGenerator(testSpec(), 999)
	if err != nil {
		t.Fatal(err)
	}
	healed := func() bool {
		if s.AvailableReplicas() != replicas {
			return false
		}
		for _, r := range s.Health().Replicas {
			if r.State != "healthy" {
				return false
			}
		}
		return true
	}
	deadline := time.Now().Add(10 * time.Second)
	for !healed() {
		if time.Now().After(deadline) {
			t.Fatalf("pool did not heal in 10s; health %+v", s.Health())
		}
		// Bursts, not single probes: an idle suspect replica only clears
		// probation by serving a batch, and least-outstanding dispatch
		// breaks zero-load ties toward the first replica.
		var hwg sync.WaitGroup
		for i := 0; i < 2*replicas*s.opts.MaxBatch; i++ {
			sample := g.Sample()
			hwg.Add(1)
			go func() {
				defer hwg.Done()
				lookup(sample)
			}()
		}
		hwg.Wait()
	}

	// Recovery must be visible in the exported metrics.
	snap = s.Metrics().Snapshot()
	if got := issued.Load(); snap.Completed != got {
		t.Errorf("metrics completed = %d, want %d (every request answered)", snap.Completed, got)
	}
	if snap.Degraded != degraded.Load() {
		t.Errorf("metrics degraded = %d, want %d", snap.Degraded, degraded.Load())
	}
	expo := snap.Expo() + s.Health().Expo()
	if !strings.Contains(expo, "recross_replica_restarts_total") {
		t.Error("exposition missing restart counter")
	}
	for _, line := range strings.Split(s.Health().Expo(), "\n") {
		if strings.HasPrefix(line, "recross_replica_state{") && !strings.HasSuffix(line, " 0") {
			t.Errorf("replica not healthy after injection stopped: %s", line)
		}
	}

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if got, want := s.Metrics().Completed.Load(), issued.Load(); got != want {
		t.Errorf("after close: completed = %d, want %d", got, want)
	}
}
