//go:build !race

package serve

// raceEnabled reports whether the race detector is on; allocation-
// exactness tests skip themselves under -race.
const raceEnabled = false
