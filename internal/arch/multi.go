package arch

import (
	"fmt"
	"sync"

	"recross/internal/trace"
)

// MultiChannel shards an embedding model across several independent memory
// channels — the standard production deployment (each channel has its own
// controller, DIMM, and in the NMP designs its own PEs). Tables are
// distributed round-robin; each channel runs its own System instance over
// its sub-model, channels execute concurrently, and a batch finishes when
// the slowest channel does.
type MultiChannel struct {
	name     string
	spec     trace.ModelSpec
	systems  []System
	shardOf  []int // table -> channel
	tableIdx []int // table -> index within its channel's sub-spec

	// Run scratch, reused across batches under the single-goroutine
	// System contract (the per-channel goroutines Run spawns touch only
	// their own sub-System and result slot).
	shards  []trace.Batch
	results []*RunStats
	errs    []error
}

// NewMultiChannel builds `channels` instances via the build callback, each
// over its round-robin shard of spec's tables.
func NewMultiChannel(spec trace.ModelSpec, channels int, build func(sub trace.ModelSpec) (System, error)) (*MultiChannel, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if channels <= 0 {
		return nil, fmt.Errorf("arch: channel count must be positive, got %d", channels)
	}
	if channels > len(spec.Tables) {
		return nil, fmt.Errorf("arch: %d channels for %d tables", channels, len(spec.Tables))
	}
	m := &MultiChannel{
		spec:     spec,
		shardOf:  make([]int, len(spec.Tables)),
		tableIdx: make([]int, len(spec.Tables)),
	}
	subs := make([]trace.ModelSpec, channels)
	for c := range subs {
		subs[c].Name = fmt.Sprintf("%s/ch%d", spec.Name, c)
	}
	for i, t := range spec.Tables {
		c := i % channels
		m.shardOf[i] = c
		m.tableIdx[i] = len(subs[c].Tables)
		// Keep the table's own name so its popularity permutation (seeded
		// from model+table identity) matches single-channel runs.
		subs[c].Tables = append(subs[c].Tables, t)
	}
	for c := range subs {
		sys, err := build(subs[c])
		if err != nil {
			return nil, fmt.Errorf("arch: channel %d: %w", c, err)
		}
		m.systems = append(m.systems, sys)
		if c == 0 {
			m.name = sys.Name() + "-multichannel"
		}
	}
	return m, nil
}

// Channels returns the channel count.
func (m *MultiChannel) Channels() int { return len(m.systems) }

// Name implements System.
func (m *MultiChannel) Name() string { return m.name }

// Run implements System: the batch's ops are routed to their tables'
// channels (with table indices remapped into each sub-spec), the channels
// run concurrently, and the stats merge with Cycles = slowest channel.
func (m *MultiChannel) Run(b trace.Batch) (*RunStats, error) {
	if m.shards == nil {
		m.shards = make([]trace.Batch, len(m.systems))
		m.results = make([]*RunStats, len(m.systems))
		m.errs = make([]error, len(m.systems))
	}
	shards := m.shards
	for c := range shards {
		if cap(shards[c]) < len(b) {
			grown := make(trace.Batch, len(b))
			copy(grown, shards[c])
			shards[c] = grown
		}
		shards[c] = shards[c][:len(b)]
		for si := range shards[c] {
			shards[c][si] = shards[c][si][:0]
		}
	}
	for si, s := range b {
		for _, op := range s {
			if op.Table < 0 || op.Table >= len(m.shardOf) {
				return nil, fmt.Errorf("arch: op table %d out of range", op.Table)
			}
			c := m.shardOf[op.Table]
			local := op
			local.Table = m.tableIdx[op.Table]
			shards[c][si] = append(shards[c][si], local)
		}
	}

	results := m.results
	errs := m.errs
	var wg sync.WaitGroup
	for c := range m.systems {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			results[c], errs[c] = m.systems[c].Run(shards[c])
		}(c)
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("arch: channel %d: %w", c, err)
		}
	}

	out := &RunStats{Imbalance: 1}
	var loads []int64
	for _, rs := range results {
		if rs.Cycles > out.Cycles {
			out.Cycles = rs.Cycles
		}
		out.DRAM.ACTs += rs.DRAM.ACTs
		out.DRAM.PREs += rs.DRAM.PREs
		out.DRAM.RDs += rs.DRAM.RDs
		out.DRAM.WRs += rs.DRAM.WRs
		out.DRAM.BurstsToHost += rs.DRAM.BurstsToHost
		out.DRAM.BurstsToRank += rs.DRAM.BurstsToRank
		out.DRAM.BurstsToBG += rs.DRAM.BurstsToBG
		out.DRAM.BurstsToBank += rs.DRAM.BurstsToBank
		out.DRAM.HostResultTx += rs.DRAM.HostResultTx
		out.DRAM.SubarraySwitch += rs.DRAM.SubarraySwitch
		out.Ops.Add(rs.Ops)
		out.RowHits += rs.RowHits
		out.RowMisses += rs.RowMisses
		out.Lookups += rs.Lookups
		out.CacheHits += rs.CacheHits
		out.Energy.ACT += rs.Energy.ACT
		out.Energy.RD += rs.Energy.RD
		out.Energy.IO += rs.Energy.IO
		out.Energy.PE += rs.Energy.PE
		out.Energy.Static += rs.Energy.Static
		out.Energy.Cache += rs.Energy.Cache
		loads = append(loads, rs.NodeLoads...)
	}
	out.NodeLoads = loads
	if len(loads) > 0 {
		out.Imbalance = LoadsToImbalance(loads)
	}
	return out, nil
}
