package embedding

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"recross/internal/trace"
)

// scalarReduceRef is a textbook scalar reduction — no kernels, no cache,
// no scratch reuse — serving as the independent reference the fused
// unrolled data plane must match bit for bit.
func scalarReduceRef(t Table, op trace.Op) []float32 {
	out := make([]float32, t.VecLen())
	row := make([]float32, t.VecLen())
	for k, idx := range op.Indices {
		t.Row(idx, row)
		switch op.Kind {
		case trace.Sum:
			for j := range out {
				out[j] += row[j]
			}
		case trace.Max:
			if k == 0 {
				copy(out, row)
			} else {
				for j := range out {
					if row[j] > out[j] {
						out[j] = row[j]
					}
				}
			}
		default: // trace.WeightedSum
			w := op.Weights[k]
			for j := range out {
				out[j] += w * row[j]
			}
		}
	}
	return out
}

// diffVecLens sweeps every unroll boundary: shorter than one 8-lane
// block, exactly one block, one block ± 1, and multi-block ± 1.
var diffVecLens = []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 15, 16, 17, 64, 127, 128}

func bitsEqual(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return false
		}
	}
	return true
}

// TestReduceBitIdenticalToScalar is the kernel differential property
// test: for every vector length across the unroll boundaries, every
// reduce kind, and randomized indices/weights, the kernelized
// Layer.Reduce must be bit-identical to the textbook scalar reference —
// both uncached and with a hot-row cache attached (a cold pass filling
// it, then a warm pass served from it).
func TestReduceBitIdenticalToScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	kinds := []trace.ReduceKind{trace.Sum, trace.Max, trace.WeightedSum}
	for _, vecLen := range diffVecLens {
		spec := trace.ModelSpec{Name: "diff", Tables: []trace.TableSpec{
			{Name: "t0", Rows: 500, VecLen: vecLen, Pooling: 8, Prob: 1},
		}}
		for _, kind := range kinds {
			t.Run(fmt.Sprintf("len%d_kind%d", vecLen, kind), func(t *testing.T) {
				layer, err := NewLayer(spec)
				if err != nil {
					t.Fatal(err)
				}
				cachedLayer, err := NewLayer(spec)
				if err != nil {
					t.Fatal(err)
				}
				cache, err := NewRowCache(int64(vecLen)*4*64, vecLen)
				if err != nil {
					t.Fatal(err)
				}
				if err := cachedLayer.AttachRowCache(cache); err != nil {
					t.Fatal(err)
				}
				for trial := 0; trial < 20; trial++ {
					n := 1 + rng.Intn(12)
					op := trace.Op{Table: 0, Kind: kind,
						Indices: make([]int64, n), Weights: make([]float32, n)}
					for i := range op.Indices {
						op.Indices[i] = int64(rng.Intn(500))
						op.Weights[i] = rng.Float32()*4 - 2
					}
					want := scalarReduceRef(layer.Table(0), op)
					got, err := layer.Reduce(op)
					if err != nil {
						t.Fatal(err)
					}
					if !bitsEqual(got, want) {
						t.Fatalf("trial %d: kernel reduce diverges from scalar\n got %v\nwant %v",
							trial, got, want)
					}
					// Cold pass (fills the cache) and warm pass (served
					// from it) must both stay bit-identical.
					for pass := 0; pass < 2; pass++ {
						got, err := cachedLayer.Reduce(op)
						if err != nil {
							t.Fatal(err)
						}
						if !bitsEqual(got, want) {
							t.Fatalf("trial %d pass %d: cached reduce diverges\n got %v\nwant %v",
								trial, pass, got, want)
						}
					}
				}
			})
		}
	}
}

// TestReduceSampleIntoMatchesReduce checks the arena-carving sample path
// against per-op Reduce, including scratch reuse across calls.
func TestReduceSampleIntoMatchesReduce(t *testing.T) {
	spec := trace.ModelSpec{Name: "diff-sample", Tables: []trace.TableSpec{
		{Name: "a", Rows: 300, VecLen: 17, Pooling: 4, Prob: 1},
		{Name: "b", Rows: 300, VecLen: 17, Pooling: 4, Prob: 1},
	}}
	layer, err := NewLayer(spec)
	if err != nil {
		t.Fatal(err)
	}
	g, err := trace.NewGenerator(spec, 5)
	if err != nil {
		t.Fatal(err)
	}
	var scr Scratch
	for trial := 0; trial < 10; trial++ {
		smp := g.Sample()
		got, err := layer.ReduceSampleInto(smp, &scr)
		if err != nil {
			t.Fatal(err)
		}
		for i, op := range smp {
			want, err := layer.Reduce(op)
			if err != nil {
				t.Fatal(err)
			}
			if !bitsEqual(got[i], want) {
				t.Fatalf("trial %d op %d: sample path diverges", trial, i)
			}
		}
	}
}

// TestRowCacheBasics covers hit/miss accounting, eviction, and the
// admission hint.
func TestRowCacheBasics(t *testing.T) {
	const vecLen = 8
	c, err := NewRowCache(16*rowCacheShards*vecLen*4, vecLen) // 16 slots/shard
	if err != nil {
		t.Fatal(err)
	}
	row := make([]float32, vecLen)
	if c.Get(0, 1, row) {
		t.Fatal("hit on empty cache")
	}
	for j := range row {
		row[j] = float32(j)
	}
	c.Put(0, 1, row)
	got := make([]float32, vecLen)
	if !c.Get(0, 1, got) {
		t.Fatal("miss after Put")
	}
	if !bitsEqual(got, row) {
		t.Fatalf("cache returned %v, want %v", got, row)
	}
	// Same index in a different table is a distinct key.
	if c.Get(1, 1, got) {
		t.Fatal("cross-table key collision")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Entries != 1 {
		t.Fatalf("stats %+v, want 1 hit / 2 misses / 1 entry", st)
	}

	// Overfill to force CLOCK evictions.
	for i := int64(0); i < 10000; i++ {
		c.Put(0, i, row)
	}
	if st := c.Stats(); st.Evictions == 0 {
		t.Fatal("no evictions after overfill")
	} else if st.Bytes > st.CapBytes {
		t.Fatalf("resident bytes %d exceed capacity %d", st.Bytes, st.CapBytes)
	}

	// An admission hint rejecting everything blocks new fills but not
	// probes of already-resident rows.
	c.SetAdmit(func(table int, idx int64) bool { return false })
	before := c.Stats().Entries
	c.Put(2, 42, row)
	if c.Get(2, 42, got) {
		t.Fatal("rejected fill became resident")
	}
	if c.Stats().Entries != before {
		t.Fatal("entry count moved on rejected fill")
	}
	c.SetAdmit(nil)
	c.Put(2, 42, row)
	if !c.Get(2, 42, got) {
		t.Fatal("fill after clearing the hint missed")
	}
}

// TestRowCacheConcurrent hammers one cache from 8 goroutines with
// overlapping keys — run under -race this proves the sharded locking.
// Every hit must return the exact row the procedural table generates
// (a torn or misfiled copy would differ).
func TestRowCacheConcurrent(t *testing.T) {
	const vecLen = 16
	tab, err := NewProcedural(1, 512, vecLen)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewRowCache(64*rowCacheShards*vecLen*4, vecLen)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			row := make([]float32, vecLen)
			want := make([]float32, vecLen)
			for i := 0; i < 5000; i++ {
				idx := int64(rng.Intn(512))
				if c.Get(0, idx, row) {
					tab.Row(idx, want)
					if !bitsEqual(row, want) {
						errs <- fmt.Errorf("goroutine %d: corrupt hit for row %d", g, idx)
						return
					}
					continue
				}
				tab.Row(idx, row)
				c.Put(0, idx, row)
				if i%1000 == 0 {
					_ = c.Stats()
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := c.Stats()
	if st.Hits == 0 {
		t.Fatal("concurrent hammer produced no hits")
	}
}

// benchReduceOp builds the 4096-gather Zipf workload the data-plane
// benchmarks share (mirrors recross-bench -perf's reduce_* entries).
func benchReduceOp(b *testing.B, kind trace.ReduceKind) (*Layer, trace.Op) {
	b.Helper()
	spec := trace.ModelSpec{Name: "bench-reduce", Tables: []trace.TableSpec{
		{Name: "t0", Rows: 100000, VecLen: 64, Pooling: 8, Prob: 1, Skew: 1.2},
	}}
	layer, err := NewLayer(spec)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	z := rand.NewZipf(rng, 1.2, 8, 99999)
	idx := make([]int64, 4096)
	w := make([]float32, len(idx))
	for i := range idx {
		idx[i] = int64(z.Uint64())
		w[i] = rng.Float32()
	}
	return layer, trace.Op{Table: 0, Kind: kind, Indices: idx, Weights: w}
}

// BenchmarkReduceWeightedSum4k is the kernelized zero-alloc path with an
// 8 MiB hot-row cache; BenchmarkReduceWeightedSum4kScalar is the
// pre-kernel baseline (per-call allocations, uncached regeneration,
// scalar loops). Their ratio is the data-plane speedup recorded in
// BENCH_PR5.json.
func BenchmarkReduceWeightedSum4k(b *testing.B) {
	layer, op := benchReduceOp(b, trace.WeightedSum)
	cache, err := NewRowCache(8<<20, 64)
	if err != nil {
		b.Fatal(err)
	}
	if err := layer.AttachRowCache(cache); err != nil {
		b.Fatal(err)
	}
	dst := make([]float32, 64)
	var scr Scratch
	if err := layer.ReduceInto(dst, op, &scr); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := layer.ReduceInto(dst, op, &scr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReduceWeightedSum4kScalar(b *testing.B) {
	layer, op := benchReduceOp(b, trace.WeightedSum)
	t := layer.Table(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := scalarReduceRef(t, op)
		benchSink = out[0]
	}
}

var benchSink float32

func BenchmarkReduceSum4k(b *testing.B) {
	layer, op := benchReduceOp(b, trace.Sum)
	dst := make([]float32, 64)
	var scr Scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := layer.ReduceInto(dst, op, &scr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReduceMax4k(b *testing.B) {
	layer, op := benchReduceOp(b, trace.Max)
	dst := make([]float32, 64)
	var scr Scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := layer.ReduceInto(dst, op, &scr); err != nil {
			b.Fatal(err)
		}
	}
}
