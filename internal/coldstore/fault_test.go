package coldstore

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// hookDev interposes on the store's real device for fault tests (the chaos
// package has the reusable wrapper; this package cannot import it without a
// cycle, so tests script faults directly). Hooks are swapped atomically so
// tests can flip behaviour while store goroutines are mid-read.
type hookDev struct {
	inner Device
	// read, when set, replaces ReadPage (call d.inner directly inside to
	// pass through, then damage dst or return an error).
	read atomic.Pointer[func(page int64, dst []byte) error]
	// write, when set, replaces WritePage.
	write atomic.Pointer[func(page int64, src []byte) error]
}

func (d *hookDev) ReadPage(page int64, dst []byte) error {
	if f := d.read.Load(); f != nil {
		return (*f)(page, dst)
	}
	return d.inner.ReadPage(page, dst)
}

func (d *hookDev) WritePage(page int64, src []byte) error {
	if f := d.write.Load(); f != nil {
		return (*f)(page, src)
	}
	return d.inner.WritePage(page, src)
}

func (d *hookDev) setRead(f func(page int64, dst []byte) error)  { d.read.Store(&f) }
func (d *hookDev) setWrite(f func(page int64, src []byte) error) { d.write.Store(&f) }
func (d *hookDev) clearRead()                                    { d.read.Store(nil) }
func (d *hookDev) clearWrite()                                   { d.write.Store(nil) }

// newHookedStore opens a store whose device is wrapped with a hookDev.
func newHookedStore(t *testing.T, cfg Config, rows ...int64) (*Store, []RowSource, *hookDev) {
	t.Helper()
	hd := &hookDev{}
	prev := cfg.WrapDevice
	cfg.WrapDevice = func(d Device) Device {
		if prev != nil {
			d = prev(d)
		}
		hd.inner = d
		return hd
	}
	s, srcs := newTestStore(t, cfg, rows...)
	return s, srcs, hd
}

// readWant materializes the reference bits for (table, idx).
func readWant(srcs []RowSource, ti int, idx int64) []float32 {
	want := make([]float32, srcs[ti].VecLen())
	srcs[ti].Row(idx, want)
	return want
}

// checkRow asserts ReadRow succeeds and returns the reference bits.
func checkRow(t *testing.T, s *Store, srcs []RowSource, ti int, idx int64) {
	t.Helper()
	got := make([]float32, srcs[ti].VecLen())
	if !s.ReadRow(ti, idx, got) {
		t.Fatalf("table %d row %d not served", ti, idx)
	}
	want := readWant(srcs, ti, idx)
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("table %d row %d elem %d: %v != %v", ti, idx, j, got[j], want[j])
		}
	}
}

// TestChecksumRepairsCorruptRead checks a device read returning flipped
// bits is caught by the page CRC32C and repaired bit-exactly from the
// source — the caller never sees the damage.
func TestChecksumRepairsCorruptRead(t *testing.T) {
	// 256 B pages, 4 rows/page, single-frame cache so rereads hit the device.
	s, srcs, hd := newHookedStore(t, Config{PageBytes: 256, CacheBytes: 256, Prefetch: -1}, 64)
	checkRow(t, s, srcs, 0, 0) // populate page 0
	checkRow(t, s, srcs, 0, 8) // page 2 evicts page 0 from the 1-frame cache
	hd.setRead(func(page int64, dst []byte) error {
		err := hd.inner.ReadPage(page, dst)
		if err == nil && page == 0 {
			dst[3] ^= 0xff // silent media corruption on page 0 only
		}
		return err
	})
	checkRow(t, s, srcs, 0, 1) // page 0 again: corrupt read -> repair
	st := s.Stats()
	if st.ChecksumFailures == 0 || st.Repairs == 0 {
		t.Fatalf("corruption not caught: %+v", st)
	}
	if st.ReadFailures != 0 || st.Degraded {
		t.Fatalf("repairable corruption counted as device failure: %+v", st)
	}
	// The repair rewrote the reference bytes; with the hook still damaging
	// page 0, every reread keeps repairing but still serves exact bits.
	hd.clearRead()
	checkRow(t, s, srcs, 0, 9) // evict
	checkRow(t, s, srcs, 0, 2)
	if got := s.Stats().ChecksumFailures; got != st.ChecksumFailures {
		t.Fatalf("checksum failure after repair with healthy device: %d -> %d", st.ChecksumFailures, got)
	}
}

// TestTornWriteRepairedOnRead checks a write-back that silently persists
// only half the page (reported as success) is caught by the checksum on
// the very next read and never served.
func TestTornWriteRepairedOnRead(t *testing.T) {
	s, srcs, hd := newHookedStore(t, Config{PageBytes: 256, CacheBytes: 256, Prefetch: -1}, 64)
	var torn atomic.Int64
	hd.setWrite(func(page int64, src []byte) error {
		if page == 1 && torn.Add(1) == 1 {
			return hd.inner.WritePage(page, src[:len(src)/2]) // tear the first write
		}
		return hd.inner.WritePage(page, src)
	})
	// First access of page 1: populate tears the write-back, the immediate
	// device read mismatches, repair rewrites and serves reference bits.
	checkRow(t, s, srcs, 0, 4)
	st := s.Stats()
	if st.ChecksumFailures == 0 || st.Repairs == 0 {
		t.Fatalf("torn write not caught: %+v", st)
	}
	hd.clearWrite()
	checkRow(t, s, srcs, 0, 0) // evict page 1
	checkRow(t, s, srcs, 0, 5) // reread page 1 from the repaired file
	if got := s.Stats().ChecksumFailures; got != st.ChecksumFailures {
		t.Fatalf("repair did not persist: checksum failures %d -> %d", st.ChecksumFailures, got)
	}
}

// TestRetryRecoversTransientError checks a read that fails transiently is
// retried with backoff and succeeds without tripping the breaker.
func TestRetryRecoversTransientError(t *testing.T) {
	s, srcs, hd := newHookedStore(t, Config{
		PageBytes: 256, CacheBytes: 256, Prefetch: -1,
		Retries: 2, RetryBackoff: time.Microsecond,
	}, 64)
	errTransient := errors.New("transient")
	var fails atomic.Int64
	fails.Store(2)
	hd.setRead(func(page int64, dst []byte) error {
		if fails.Add(-1) >= 0 {
			return errTransient
		}
		return hd.inner.ReadPage(page, dst)
	})
	checkRow(t, s, srcs, 0, 0)
	st := s.Stats()
	if st.Retries != 2 {
		t.Fatalf("Retries = %d, want 2", st.Retries)
	}
	if st.ReadFailures != 0 || st.Degraded {
		t.Fatalf("recovered read counted as failure: %+v", st)
	}
}

// TestBreakerOpensHalfOpensCloses drives the circuit through its full
// cycle against a sticky-failed device: threshold failures open it, reads
// then fail fast, the cooldown admits a probe (half-open), and probe
// successes close it again.
func TestBreakerOpensHalfOpensCloses(t *testing.T) {
	s, srcs, hd := newHookedStore(t, Config{
		PageBytes: 256, CacheBytes: 256, Prefetch: -1,
		Retries: -1, BreakerThreshold: 2, BreakerCooldown: 5 * time.Millisecond, BreakerProbes: 2,
	}, 64)
	// Populate pages 0 and 1 while healthy.
	checkRow(t, s, srcs, 0, 0)
	checkRow(t, s, srcs, 0, 4)
	errDev := errors.New("device gone")
	hd.setRead(func(page int64, dst []byte) error { return errDev })
	dst := make([]float32, 16)
	if s.ReadRow(0, 0, dst) { // cache holds page 1; page 0 must hit the device
		t.Fatal("read served through a failed device")
	}
	if s.ReadRow(0, 1, dst) {
		t.Fatal("read served through a failed device")
	}
	st := s.Stats()
	if st.BreakerState != int64(BreakerOpen) || !st.Degraded {
		t.Fatalf("breaker not open after %d failures: %+v", st.ReadFailures, st)
	}
	if s.ReadRow(0, 2, dst) {
		t.Fatal("read served while breaker open")
	}
	if st := s.Stats(); st.BreakerRejects == 0 {
		t.Fatalf("open breaker did not fail fast: %+v", st)
	}
	// Device heals; after the cooldown the next reads are probes.
	hd.clearRead()
	time.Sleep(10 * time.Millisecond)
	checkRow(t, s, srcs, 0, 0)
	checkRow(t, s, srcs, 0, 4)
	st = s.Stats()
	if st.BreakerState != int64(BreakerClosed) || st.Degraded {
		t.Fatalf("breaker not closed after healthy probes: %+v", st)
	}
	if st.BreakerOpens < 1 || st.BreakerHalfOpens < 1 || st.BreakerCloses < 1 {
		t.Fatalf("transition counters: %+v", st)
	}
}

// TestBreakerStateMachine unit-tests the breaker directly: thresholds,
// cooldown gating, half-open failure, and probe-counted close.
func TestBreakerStateMachine(t *testing.T) {
	b := newBreaker(2, 2, 5*time.Millisecond)
	if !b.allow() || b.current() != BreakerClosed {
		t.Fatal("new breaker not closed")
	}
	b.onFailure()
	if b.current() != BreakerClosed {
		t.Fatal("opened below threshold")
	}
	b.onFailure()
	if b.current() != BreakerOpen {
		t.Fatal("did not open at threshold")
	}
	if b.allow() {
		t.Fatal("allowed read during cooldown")
	}
	time.Sleep(6 * time.Millisecond)
	if !b.allow() || b.current() != BreakerHalfOpen {
		t.Fatal("cooldown did not admit a probe")
	}
	b.onFailure()
	if b.current() != BreakerOpen {
		t.Fatal("half-open failure did not re-open")
	}
	time.Sleep(6 * time.Millisecond)
	if !b.allow() {
		t.Fatal("second cooldown did not admit a probe")
	}
	b.onSuccess()
	if b.current() != BreakerHalfOpen {
		t.Fatal("closed below probe count")
	}
	b.onSuccess()
	if b.current() != BreakerClosed {
		t.Fatal("probes did not close")
	}
	if b.opens.Load() != 2 || b.halfOpens.Load() != 2 || b.closes.Load() != 1 {
		t.Fatalf("transition counters: opens %d halfOpens %d closes %d",
			b.opens.Load(), b.halfOpens.Load(), b.closes.Load())
	}
}

// TestReadDeadlineAbandonsSlowRead checks a stalled device read is
// abandoned at the deadline and counted, and that Close still drains the
// abandoned straggler cleanly.
func TestReadDeadlineAbandonsSlowRead(t *testing.T) {
	s, srcs, hd := newHookedStore(t, Config{
		PageBytes: 256, CacheBytes: 256, Prefetch: -1,
		Retries: -1, ReadDeadline: 2 * time.Millisecond,
	}, 64)
	checkRow(t, s, srcs, 0, 0) // populate while fast
	hd.setRead(func(page int64, dst []byte) error {
		time.Sleep(20 * time.Millisecond)
		return hd.inner.ReadPage(page, dst)
	})
	dst := make([]float32, 16)
	if s.ReadRow(0, 4, dst) {
		t.Fatal("read served past its deadline")
	}
	if st := s.Stats(); st.ReadTimeouts == 0 || st.ReadFailures == 0 {
		t.Fatalf("timeout not counted: %+v", st)
	}
	hd.clearRead()
	checkRow(t, s, srcs, 0, 4)
	// Close while a fresh straggler is still sleeping: must drain, not race
	// the unmap or leak.
	hd.setRead(func(page int64, dst []byte) error {
		time.Sleep(20 * time.Millisecond)
		return hd.inner.ReadPage(page, dst)
	})
	s.ReadRow(0, 8, dst)
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestScrubberRepairsSilentCorruption checks the background scrubber finds
// and repairs corruption no read path has touched.
func TestScrubberRepairsSilentCorruption(t *testing.T) {
	s, srcs, hd := newHookedStore(t, Config{
		PageBytes: 256, CacheBytes: 256, Prefetch: -1,
		ScrubInterval: time.Millisecond,
	}, 64)
	checkRow(t, s, srcs, 0, 0) // populate page 0
	// Flip bits on the backing medium underneath the store.
	junk := make([]byte, 256)
	if err := hd.inner.ReadPage(0, junk); err != nil {
		t.Fatalf("raw read: %v", err)
	}
	junk[17] ^= 0xff
	if err := hd.inner.WritePage(0, junk); err != nil {
		t.Fatalf("raw write: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := s.Stats()
		if st.ChecksumFailures >= 1 && st.Repairs >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("scrubber never repaired: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	// The repaired page serves reference bits (bypass the stale cache frame
	// by evicting first).
	checkRow(t, s, srcs, 0, 8)
	checkRow(t, s, srcs, 0, 1)
	if st := s.Stats(); st.ScrubPages == 0 {
		t.Fatalf("no scrub pages counted: %+v", st)
	}
}

// TestScrubberClosesBreakerAfterOutage checks auto-recovery with zero
// request traffic: a sticky device outage opens the breaker, and once the
// device returns the scrubber's probes alone close it. The cooldown is set
// far beyond the test so only the scrubber path (success-while-open) can
// recover it.
func TestScrubberClosesBreakerAfterOutage(t *testing.T) {
	s, srcs, hd := newHookedStore(t, Config{
		PageBytes: 256, CacheBytes: 256, Prefetch: -1,
		Retries: -1, BreakerThreshold: 1, BreakerProbes: 1,
		BreakerCooldown: time.Hour, ScrubInterval: time.Millisecond,
	}, 64)
	checkRow(t, s, srcs, 0, 0)
	errDev := errors.New("device gone")
	hd.setRead(func(page int64, dst []byte) error { return errDev })
	deadline := time.Now().Add(5 * time.Second)
	for !s.Degraded() { // scrubber probes trip the breaker on their own
		if time.Now().After(deadline) {
			t.Fatalf("breaker never opened: %+v", s.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	hd.clearRead()
	for s.Degraded() {
		if time.Now().After(deadline) {
			t.Fatalf("scrubber never closed the breaker: %+v", s.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	if st := s.Stats(); st.BreakerCloses == 0 {
		t.Fatalf("no close transition counted: %+v", st)
	}
	checkRow(t, s, srcs, 0, 1)
}

// TestCloseIdempotentConcurrent is the Close hardening proof: double close
// from racing goroutines, Close racing live readers and the prefetcher,
// and post-close operations — all clean under -race.
func TestCloseIdempotentConcurrent(t *testing.T) {
	s, srcs := newTestStore(t, Config{
		PageBytes: 256, CacheBytes: 512, Prefetch: 16,
		ScrubInterval: time.Millisecond,
	}, 256)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			got := make([]float32, 16)
			want := make([]float32, 16)
			for {
				select {
				case <-stop:
					return
				default:
				}
				idx := int64(rng.Intn(256))
				if rng.Intn(4) == 0 {
					s.Prefetch(0, idx)
					continue
				}
				if s.ReadRow(0, idx, got) { // false once closing: fine
					srcs[0].Row(idx, want)
					for j := range want {
						if got[j] != want[j] {
							t.Errorf("row %d elem %d: %v != %v", idx, j, got[j], want[j])
							return
						}
					}
				}
			}
		}(int64(w))
	}
	time.Sleep(5 * time.Millisecond) // let reads overlap the close
	var errs [2]error
	var cwg sync.WaitGroup
	for i := 0; i < 2; i++ {
		cwg.Add(1)
		go func(i int) { defer cwg.Done(); errs[i] = s.Close() }(i)
	}
	cwg.Wait()
	close(stop)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("Close %d: %v", i, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("third Close: %v", err)
	}
	dst := make([]float32, 16)
	if s.ReadRow(0, 0, dst) {
		t.Fatal("read served after Close")
	}
	if err := s.Remap(make([][]RowCount, 1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Remap after Close: %v", err)
	}
}

// TestRemapCorruptionHammer races concurrent readers against Remap churn
// and randomly corrupted device reads. Corruption is always repaired
// inline, so every served row must be bit-identical to the reference —
// under -race this is the integrity path's thread-safety proof.
func TestRemapCorruptionHammer(t *testing.T) {
	s, srcs, hd := newHookedStore(t, Config{PageBytes: 256, CacheBytes: 1024, Prefetch: 16}, 256)
	var mu sync.Mutex
	rng := rand.New(rand.NewSource(11))
	hd.setRead(func(page int64, dst []byte) error {
		err := hd.inner.ReadPage(page, dst)
		mu.Lock()
		corrupt := rng.Intn(8) == 0
		mu.Unlock()
		if err == nil && corrupt {
			dst[int(page)%len(dst)] ^= 0xff
		}
		return err
	})
	const readers = 8
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rr := rand.New(rand.NewSource(seed))
			got := make([]float32, 16)
			want := make([]float32, 16)
			for {
				select {
				case <-stop:
					return
				default:
				}
				idx := int64(rr.Intn(256))
				if rr.Intn(6) == 0 {
					s.Prefetch(0, idx)
					continue
				}
				if !s.ReadRow(0, idx, got) {
					t.Errorf("row %d not served (corruption is repairable, not fatal)", idx)
					return
				}
				srcs[0].Row(idx, want)
				for j := range want {
					if got[j] != want[j] {
						t.Errorf("row %d elem %d: %v != %v", idx, j, got[j], want[j])
						return
					}
				}
			}
		}(int64(w))
	}
	remapRng := rand.New(rand.NewSource(99))
	for r := 0; r < 15; r++ {
		var counts []RowCount
		for n := 0; n < 32; n++ {
			counts = append(counts, RowCount{Row: int64(remapRng.Intn(256)), Count: int64(remapRng.Intn(50) + 1)})
		}
		if err := s.Remap([][]RowCount{counts}); err != nil {
			t.Fatalf("Remap: %v", err)
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	st := s.Stats()
	if st.ChecksumFailures == 0 || st.Repairs == 0 {
		t.Fatalf("hammer never exercised the repair path: %+v", st)
	}
	if st.Degraded {
		t.Fatalf("repairable corruption degraded the store: %+v", st)
	}
}

// TestChecksumOffSkipsVerification pins the benchmark baseline: with
// DisableChecksum even damaged device reads are served unverified (the
// documented trade), and the failure counters stay zero.
func TestChecksumOffSkipsVerification(t *testing.T) {
	s, srcs, hd := newHookedStore(t, Config{
		PageBytes: 256, CacheBytes: 256, Prefetch: -1, DisableChecksum: true,
	}, 64)
	checkRow(t, s, srcs, 0, 0)
	checkRow(t, s, srcs, 0, 8) // evict page 0
	hd.setRead(func(page int64, dst []byte) error {
		err := hd.inner.ReadPage(page, dst)
		if err == nil && page == 0 {
			dst[3] ^= 0xff
		}
		return err
	})
	dst := make([]float32, 16)
	if !s.ReadRow(0, 0, dst) { // row 0 owns the corrupted byte
		t.Fatal("read failed")
	}
	want := readWant(srcs, 0, 0)
	same := true
	for j := range want {
		if dst[j] != want[j] {
			same = false
		}
	}
	if same {
		t.Fatal("corruption expected to pass through with checksums off")
	}
	if st := s.Stats(); st.ChecksumFailures != 0 || st.Repairs != 0 {
		t.Fatalf("verification ran with checksums off: %+v", st)
	}
}
