package nmp

import (
	"fmt"

	"recross/internal/kernels"
)

// Level identifies where in the DRAM tree a PE sits.
type Level int

const (
	// LevelRank PEs live in the DIMM buffer chip (TensorDIMM/RecNMP and
	// ReCross's R-region).
	LevelRank Level = iota
	// LevelBankGroup PEs live inside the DRAM chip next to a bank group
	// (TRiM-G and ReCross's G-region).
	LevelBankGroup
	// LevelBank PEs live next to a bank (TRiM-B and ReCross's B-region,
	// where the bank is additionally subarray-parallel).
	LevelBank
	// LevelHost means no NMP: data is reduced on the CPU.
	LevelHost
	// LevelCold marks a region backed by the flash cold tier
	// (internal/coldstore) rather than DRAM: gathers are served by page
	// reads from the in-storage device, optionally pre-reduced there
	// (RecSSD-style in-storage reduction).
	LevelCold
)

func (l Level) String() string {
	switch l {
	case LevelRank:
		return "rank"
	case LevelBankGroup:
		return "bank-group"
	case LevelBank:
		return "bank"
	case LevelHost:
		return "host"
	case LevelCold:
		return "cold"
	default:
		return fmt.Sprintf("level(%d)", int(l))
	}
}

// OpStats counts the arithmetic a PE performs, for the energy model.
type OpStats struct {
	Adds  int64
	Mults int64
}

// Add accumulates other into s.
func (s *OpStats) Add(other OpStats) {
	s.Adds += other.Adds
	s.Mults += other.Mults
}

// ComputeUnit is the cumulative multiply-accumulate datapath of Fig. 7(f):
// an FP32 vector register accumulating weighted gathered vectors. One unit
// serves one in-flight embedding operation.
type ComputeUnit struct {
	acc   []float32
	dirty bool
	stats OpStats
}

// NewComputeUnit returns a unit for vectors of length vecLen.
func NewComputeUnit(vecLen int) (*ComputeUnit, error) {
	if vecLen <= 0 {
		return nil, fmt.Errorf("nmp: vector length must be positive, got %d", vecLen)
	}
	return &ComputeUnit{acc: make([]float32, vecLen)}, nil
}

// VecLen returns the unit's vector width.
func (u *ComputeUnit) VecLen() int { return len(u.acc) }

// Accumulate folds vec into the accumulator under op. For OpWeightedSum the
// vector is scaled by weight first; for OpSum the weight is ignored.
func (u *ComputeUnit) Accumulate(op Opcode, vec []float32, weight float32) error {
	if len(vec) != len(u.acc) {
		return fmt.Errorf("nmp: vector length %d != accumulator %d", len(vec), len(u.acc))
	}
	switch op {
	case OpSum:
		kernels.Add(u.acc, vec)
		u.stats.Adds += int64(len(vec))
	case OpWeightedSum:
		kernels.Axpy(u.acc, vec, weight)
		u.stats.Adds += int64(len(vec))
		u.stats.Mults += int64(len(vec))
	case OpMax:
		if !u.dirty {
			copy(u.acc, vec)
		} else {
			kernels.Max(u.acc, vec)
		}
		u.stats.Adds += int64(len(vec)) // comparators cost like adders
	default:
		return fmt.Errorf("nmp: unknown opcode %d", op)
	}
	u.dirty = true
	return nil
}

// FoldPartial folds an already-reduced partial result from a lower-level
// PE: a plain element-wise add regardless of opcode (the weighting already
// happened below), per §4.1.
func (u *ComputeUnit) FoldPartial(op Opcode, psum []float32) error {
	if len(psum) != len(u.acc) {
		return fmt.Errorf("nmp: psum length %d != accumulator %d", len(psum), len(u.acc))
	}
	if op == OpMax {
		return u.Accumulate(OpMax, psum, 1)
	}
	kernels.Add(u.acc, psum)
	u.stats.Adds += int64(len(psum))
	u.dirty = true
	return nil
}

// AccumulatePsum is the original name of FoldPartial, kept for callers.
func (u *ComputeUnit) AccumulatePsum(op Opcode, psum []float32) error {
	return u.FoldPartial(op, psum)
}

// FoldUnit folds another unit's accumulator directly — the copy-free form
// of FoldPartial(op, src.Result()).
func (u *ComputeUnit) FoldUnit(op Opcode, src *ComputeUnit) error {
	return u.FoldPartial(op, src.acc)
}

// ResultInto copies the accumulated vector into dst (len == VecLen) and
// returns dst — the copy-free-signature form of Result for callers that
// reuse buffers.
func (u *ComputeUnit) ResultInto(dst []float32) []float32 {
	copy(dst, u.acc)
	return dst
}

// Result returns a copy of the accumulated vector. Thin compatibility
// wrapper over ResultInto; hot paths should pass their own buffer.
func (u *ComputeUnit) Result() []float32 {
	return u.ResultInto(make([]float32, len(u.acc)))
}

// Reset clears the accumulator for the next embedding operation.
func (u *ComputeUnit) Reset() {
	kernels.Zero(u.acc)
	u.dirty = false
}

// Stats returns the arithmetic counts since construction.
func (u *ComputeUnit) Stats() OpStats { return u.stats }

// PE is one near-memory processing element: a compute unit plus its level
// and position, as laid out in Fig. 7(c)-(e).
type PE struct {
	Level Level
	// Node is the flat index of the memory node the PE serves (rank index,
	// flat bank-group index, or flat bank index depending on Level).
	Node int
	unit *ComputeUnit
}

// NewPE builds a PE for vectors of length vecLen.
func NewPE(level Level, node, vecLen int) (*PE, error) {
	u, err := NewComputeUnit(vecLen)
	if err != nil {
		return nil, err
	}
	return &PE{Level: level, Node: node, unit: u}, nil
}

// Unit exposes the PE's compute unit.
func (p *PE) Unit() *ComputeUnit { return p.unit }

// RankSummarizer is the DIMM-buffer logic of Fig. 7(b): it dispatches NMP
// instructions to ranks and accumulates the reduced partial sums coming back
// from the rank-level PEs, so only one result vector per operation crosses
// the channel.
type RankSummarizer struct {
	unit  *ComputeUnit
	psums int64
}

// NewRankSummarizer builds a summarizer for vectors of length vecLen.
func NewRankSummarizer(vecLen int) (*RankSummarizer, error) {
	u, err := NewComputeUnit(vecLen)
	if err != nil {
		return nil, err
	}
	return &RankSummarizer{unit: u}, nil
}

// Fold accumulates a rank PE's partial result.
func (r *RankSummarizer) Fold(op Opcode, psum []float32) error {
	if err := r.unit.FoldPartial(op, psum); err != nil {
		return err
	}
	r.psums++
	return nil
}

// FoldUnit accumulates a rank PE's partial result straight from its
// compute unit, without materializing a copy.
func (r *RankSummarizer) FoldUnit(op Opcode, src *ComputeUnit) error {
	if err := r.unit.FoldUnit(op, src); err != nil {
		return err
	}
	r.psums++
	return nil
}

// Result returns the summed vector and resets the summarizer for the next
// operation.
func (r *RankSummarizer) Result() []float32 {
	out := r.unit.Result()
	r.unit.Reset()
	return out
}

// ResultInto copies the summed vector into dst and resets the summarizer
// for the next operation — the zero-allocation form of Result.
func (r *RankSummarizer) ResultInto(dst []float32) []float32 {
	r.unit.ResultInto(dst)
	r.unit.Reset()
	return dst
}

// Psums returns how many partial results were folded since construction.
func (r *RankSummarizer) Psums() int64 { return r.psums }

// Stats returns the summarizer's arithmetic counts.
func (r *RankSummarizer) Stats() OpStats { return r.unit.Stats() }
