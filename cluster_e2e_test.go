package recross

import (
	"context"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func clusterSpec() ModelSpec {
	return ModelSpec{Name: "cluster-e2e", Tables: []TableSpec{
		{Name: "t0", Rows: 5000, VecLen: 32, Pooling: 8, Prob: 1, Skew: 1.1},
		{Name: "t1", Rows: 5000, VecLen: 32, Pooling: 8, Prob: 1, Skew: 1.1},
		{Name: "t2", Rows: 5000, VecLen: 32, Pooling: 8, Prob: 1, Skew: 1.1},
		{Name: "t3", Rows: 5000, VecLen: 32, Pooling: 8, Prob: 1, Skew: 1.1},
		{Name: "t4", Rows: 5000, VecLen: 32, Pooling: 8, Prob: 1, Skew: 1.1},
		{Name: "t5", Rows: 5000, VecLen: 32, Pooling: 8, Prob: 1, Skew: 1.1},
	}}
}

// TestClusterE2E is the full cluster story through the public facade: a
// 4-node goroutine fleet serves bit-identical scatter-gathered answers
// under concurrent load; a mid-run node kill degrades only the tables
// uniquely placed on that node (never an error, never a wrong bit); and
// a restart is re-admitted by the prober, after which the victim's
// tables serve normally again.
func TestClusterE2E(t *testing.T) {
	spec := clusterSpec()
	cfg := Config{Spec: spec, ProfileSamples: 500, Batch: 16}
	cs, err := NewClusterServer(ReCross, cfg, ClusterConfig{
		Nodes:         4,
		ProbeInterval: 20 * time.Millisecond,
		HedgeDelay:    -1, // keep dispatch deterministic for the phase asserts
		Serve:         ServeOptions{MaxBatch: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()

	layer, err := NewLayer(spec)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := NewGenerator(spec, 7)
	if err != nil {
		t.Fatal(err)
	}

	// Pick a victim that owns at least one table exclusively; with 6
	// tables on 4 nodes one must exist.
	pl := cs.Router.Placement()
	victim := -1
	for i := 0; i < 4; i++ {
		if len(pl.UniqueTables(i)) > 0 {
			victim = i
			break
		}
	}
	if victim < 0 {
		t.Fatalf("no node owns a unique table; replicas %v", pl.Replicas)
	}
	uniq := map[int]bool{}
	for _, tb := range pl.UniqueTables(victim) {
		uniq[tb] = true
	}
	touchesUniq := func(s Sample) bool {
		for _, op := range s {
			if uniq[op.Table] {
				return true
			}
		}
		return false
	}

	// Phase 1: healthy cluster, concurrent load, every answer
	// bit-identical and none degraded.
	var wg sync.WaitGroup
	var phase1Errs, phase1Bad atomic.Int64
	for c := 0; c < 4; c++ {
		g, err := NewGenerator(spec, 100+int64(c))
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(g *Generator) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				sample := g.Sample()
				res, err := cs.Lookup(context.Background(), sample)
				if err != nil {
					phase1Errs.Add(1)
					return
				}
				want, err := layer.ReduceSample(sample)
				if err != nil || !reflect.DeepEqual(res.Vectors, want) || res.Degraded {
					phase1Bad.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()
	if phase1Errs.Load() > 0 || phase1Bad.Load() > 0 {
		t.Fatalf("healthy phase: %d errors, %d bad answers", phase1Errs.Load(), phase1Bad.Load())
	}

	// Phase 2: kill the victim under load. Nothing may error; answers
	// stay bit-identical; degradation appears, and only on samples that
	// touch the victim's unique tables.
	var killWG sync.WaitGroup
	var p2Errs, p2Bad, p2Degraded, p2WrongDegrade atomic.Int64
	stop := make(chan struct{})
	for c := 0; c < 4; c++ {
		g, err := NewGenerator(spec, 200+int64(c))
		if err != nil {
			t.Fatal(err)
		}
		killWG.Add(1)
		go func(g *Generator) {
			defer killWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				sample := g.Sample()
				res, err := cs.Lookup(context.Background(), sample)
				if err != nil {
					p2Errs.Add(1)
					continue
				}
				want, rerr := layer.ReduceSample(sample)
				if rerr != nil || !reflect.DeepEqual(res.Vectors, want) {
					p2Bad.Add(1)
				}
				if res.Degraded {
					p2Degraded.Add(1)
					if !touchesUniq(sample) {
						p2WrongDegrade.Add(1)
					}
				}
			}
		}(g)
	}
	time.Sleep(50 * time.Millisecond)
	if err := cs.Fleet.Kill(victim); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)
	close(stop)
	killWG.Wait()
	if p2Errs.Load() > 0 {
		t.Errorf("node kill surfaced %d errors; loss must degrade, not fail", p2Errs.Load())
	}
	if p2Bad.Load() > 0 {
		t.Errorf("%d answers lost bit-identity during the kill", p2Bad.Load())
	}
	if p2WrongDegrade.Load() > 0 {
		t.Errorf("%d answers degraded without touching the victim's unique tables", p2WrongDegrade.Load())
	}

	// A direct probe of a unique table degrades while the victim is down.
	for i := 0; i < 8; i++ {
		var sample Sample
		for len(sample) == 0 || !touchesUniq(sample) {
			sample = gen.Sample()
		}
		res, err := cs.Lookup(context.Background(), sample)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Degraded {
			t.Fatalf("unique-table sample served undegraded with its only owner down (attempt %d)", i)
		}
		want, err := layer.ReduceSample(sample)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.Vectors, want) {
			t.Fatal("degraded answer not bit-identical")
		}
		break
	}
	if h := cs.Router.Health(); h.Status != "degraded" || h.Available != 3 {
		t.Errorf("health after kill = %q/%d available, want degraded/3", h.Status, h.Available)
	}

	// Phase 3: restart; the prober re-admits the node, after which
	// unique tables serve undegraded again.
	if err := cs.Fleet.Restart(victim); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for cs.Router.Health().Available != 4 {
		if time.Now().After(deadline) {
			t.Fatal("restarted node never re-admitted")
		}
		time.Sleep(10 * time.Millisecond)
	}
	for i := 0; i < 20; i++ {
		var sample Sample
		for len(sample) == 0 || !touchesUniq(sample) {
			sample = gen.Sample()
		}
		res, err := cs.Lookup(context.Background(), sample)
		if err != nil {
			t.Fatal(err)
		}
		if res.Degraded {
			t.Fatalf("lookup %d still degraded after re-admission", i)
		}
		want, err := layer.ReduceSample(sample)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.Vectors, want) {
			t.Fatal("post-restart answer not bit-identical")
		}
	}

	st := cs.Router.Stats()
	if st.Degraded == 0 || st.Revivals == 0 {
		t.Errorf("stats degraded=%d revivals=%d, want both > 0", st.Degraded, st.Revivals)
	}
}

// TestClusterLoadgenSmoke: the cluster load generator completes against
// a small fleet and reports sane numbers.
func TestClusterLoadgenSmoke(t *testing.T) {
	spec := clusterSpec()
	cs, err := NewClusterServer(ReCross, Config{Spec: spec, ProfileSamples: 500, Batch: 16}, ClusterConfig{
		Nodes: 2,
		Serve: ServeOptions{MaxBatch: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()
	rep, err := ClusterLoadgen(cs.Router, LoadgenOptions{
		Spec:     spec,
		Clients:  4,
		Duration: 250 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 || rep.Thru <= 0 {
		t.Errorf("loadgen served nothing: %+v", rep)
	}
	if rep.Errors > 0 || rep.Degraded > 0 {
		t.Errorf("healthy loadgen saw errors=%d degraded=%d", rep.Errors, rep.Degraded)
	}
}
