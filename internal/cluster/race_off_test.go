//go:build !race

package cluster

// raceEnabled reports whether the race detector is on — its shadow
// memory instrumentation allocates, so allocation-exactness tests skip
// themselves under -race.
const raceEnabled = false
