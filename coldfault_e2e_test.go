package recross

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestColdFaultE2E is the acceptance run for storage-tier fault tolerance:
// the oversubscribed cold-tier table set (coldSpec, ~4.4x the DRAM budget)
// is served while the backing device injects page corruption and read
// stalls, and every answer stays bit-identical to an all-DRAM functional
// reference — corruption is caught by the per-page CRC32C and repaired
// from the source tables. A scripted sticky device outage then drives the
// circuit breaker open (replicas flip to cold-degraded health, cold rows
// ride the direct-materialization fallback, still bit-exact) and, after
// the device is restored, the background scrubber's probes alone walk the
// breaker half-open -> closed. The run must never wedge; under -race this
// is the whole path's thread-safety proof.
func TestColdFaultE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second acceptance run")
	}
	spec := coldSpec()
	cold := coldTierConfig()
	cold.Retries = 1
	cold.RetryBackoff = 50 * time.Microsecond
	cold.BreakerThreshold = 2
	cold.BreakerProbes = 1
	// Recovery must come from the scrubber observing device health, not
	// from elapsed time: park the cooldown beyond the test.
	cold.BreakerCooldown = time.Hour
	cold.ScrubInterval = time.Millisecond
	var dev *FaultyColdDevice
	cold.WrapDevice = func(d ColdDevice) ColdDevice {
		dev = WrapColdDevice(d, ColdFaultConfig{
			Rates: ColdFaultRates{CorruptPage: 0.05, Stall: 0.02},
			Stall: 200 * time.Microsecond,
			Seed:  9,
		}, nil)
		return dev
	}

	cfg := Config{Spec: spec, ProfileSamples: 1500, Batch: 32, Cold: cold}
	srv, err := NewServer(ReCross, cfg, 2, ServeOptions{
		MaxBatch: 32,
		MaxDelay: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if dev == nil {
		t.Fatal("WrapDevice never invoked — cold store not built")
	}

	ref, err := NewLayer(spec) // all-DRAM functional reference
	if err != nil {
		t.Fatal(err)
	}
	gen, err := NewGenerator(spec, 42)
	if err != nil {
		t.Fatal(err)
	}
	checkBitIdentical := func(phase string, n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			sample := gen.Sample()
			res, err := srv.Lookup(context.Background(), sample)
			if err != nil {
				t.Fatalf("%s sample %d: %v", phase, i, err)
			}
			want, err := ref.ReduceSample(sample)
			if err != nil {
				t.Fatal(err)
			}
			for k := range want {
				if !AlmostEqual(res.Vectors[k], want[k], 0) {
					t.Fatalf("%s sample %d op %d: served vector differs from all-DRAM reference", phase, i, k)
				}
			}
		}
	}

	// Phase 1: corruption and stalls flowing, answers bit-exact, health ok.
	// Repairable faults must not trip the breaker.
	checkBitIdentical("injected-corruption", 40)
	if h := srv.Health(); h.ColdDegraded || h.Status != "ok" {
		t.Fatalf("repairable corruption degraded the tier: %+v", h)
	}

	// Phase 2: sticky device outage. The scrubber's failed probes open the
	// breaker; replicas flip to cold-degraded; answers stay bit-exact via
	// the direct-materialization fallback.
	dev.FailDevice()
	deadline := time.Now().Add(10 * time.Second)
	for !srv.Health().ColdDegraded {
		if time.Now().After(deadline) {
			t.Fatal("breaker never opened during sticky outage")
		}
		time.Sleep(time.Millisecond)
	}
	if h := srv.Health(); h.Status != "cold-degraded" {
		t.Fatalf("health status %q during outage, want cold-degraded", h.Status)
	}
	checkBitIdentical("sticky-outage", 40)
	res, err := srv.Lookup(context.Background(), gen.Sample())
	if err != nil {
		t.Fatal(err)
	}
	if !res.ColdDegraded {
		t.Fatal("Result.ColdDegraded false while the breaker is open")
	}
	if srv.Layer().ColdFallbacks() == 0 {
		t.Fatal("no direct-materialization fallbacks during the outage")
	}

	// The degraded state rides /healthz (200 — answers are still correct)
	// and /metrics while the outage lasts.
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz %d during cold degradation, want 200", resp.StatusCode)
	}
	if !strings.Contains(string(hb), `"cold_degraded":true`) || !strings.Contains(string(hb), `"cold-degraded"`) {
		t.Fatalf("/healthz body missing cold degradation: %s", hb)
	}

	// Phase 3: restore the device. Only the scrubber can recover it (the
	// cooldown is an hour): its probes walk the breaker open -> half-open
	// -> closed with no request traffic required.
	dev.RestoreDevice()
	for srv.Health().ColdDegraded {
		if time.Now().After(deadline) {
			t.Fatal("breaker never closed after the device was restored")
		}
		time.Sleep(time.Millisecond)
	}
	if h := srv.Health(); h.Status != "ok" {
		t.Fatalf("health status %q after recovery, want ok", h.Status)
	}
	checkBitIdentical("post-recovery", 40)

	// Phase 4: closed-loop load with injection still flowing — the server
	// must keep answering with bounded latency (never wedge).
	rep, err := Loadgen(srv, LoadgenOptions{
		Spec:     spec,
		Clients:  4,
		Duration: 800 * time.Millisecond,
		TailMass: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 {
		t.Fatal("loadgen completed no requests under injection")
	}
	if rep.P99 <= 0 || rep.P99 > 2*time.Second {
		t.Fatalf("p99 %v not bounded under injection", rep.P99)
	}

	// Phase 5: the integrity and breaker series ride /metrics with real
	// transitions behind them: repairs happened, the breaker opened,
	// half-opened and closed exactly through its cycle.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	mb := string(body)
	for _, series := range []string{
		"recross_coldstore_checksum_failures_total",
		"recross_coldstore_repairs_total",
		"recross_coldstore_scrub_pages_total",
		"recross_coldstore_breaker_rejects_total",
		"recross_coldstore_breaker_opens_total",
		"recross_coldstore_breaker_half_opens_total",
		"recross_coldstore_breaker_closes_total",
		"recross_coldstore_breaker_state",
		"recross_requests_cold_degraded_total",
		"recross_cold_degraded_mode",
		"recross_dataplane_cold_fallbacks_total",
	} {
		if !strings.Contains(mb, series) {
			t.Fatalf("/metrics missing %q", series)
		}
	}
	for _, zero := range []string{
		"recross_coldstore_checksum_failures_total 0\n",
		"recross_coldstore_repairs_total 0\n",
		"recross_coldstore_breaker_opens_total 0\n",
		"recross_coldstore_breaker_half_opens_total 0\n",
		"recross_coldstore_breaker_closes_total 0\n",
		"recross_requests_cold_degraded_total 0\n",
	} {
		if strings.Contains(mb, zero) {
			t.Fatalf("series never moved: %s", strings.TrimSpace(zero))
		}
	}
	if !strings.Contains(mb, "recross_coldstore_breaker_state 0\n") {
		t.Fatal("breaker not closed at end of run")
	}
	if !strings.Contains(mb, "recross_cold_degraded_mode 0\n") {
		t.Fatal("cold-degraded gauge still set after recovery")
	}
}
