package core

import (
	"fmt"

	"recross/internal/arch"
	"recross/internal/dram"
	"recross/internal/energy"
	"recross/internal/memctrl"
	"recross/internal/partition"
	"recross/internal/sim"
	"recross/internal/trace"
)

// Rebalance implements the dynamic embedding scheduling of §4.5: when the
// access-frequency spectrum drifts (rarely-accessed rows becoming popular
// and vice versa), the host periodically re-profiles, re-solves the
// bandwidth-aware partitioning, and rebuilds the placement so newly-hot
// rows migrate into the high-parallelism B-region and cooled rows retire to
// the capacity-optimized R-region. The hardware regions are unchanged; only
// the mapping tables are rewritten.
//
// prof must describe the same model spec the instance was built with.
func (r *ReCross) Rebalance(prof *partition.Profile) error {
	if prof == nil {
		return fmt.Errorf("core: nil profile")
	}
	if err := r.checkProfile(prof); err != nil {
		return err
	}

	regions := r.Regions()
	var dec *partition.Decision
	var err error
	if r.cfg.BWP {
		dec, err = partition.SolveLP(prof, regions, r.cfg.Batch)
	} else {
		dec, err = partition.Greedy(prof, regions, r.cfg.Batch)
	}
	if err != nil {
		return fmt.Errorf("core: rebalance partitioning: %w", err)
	}
	pl, err := partition.Build(prof, dec)
	if err != nil {
		return fmt.Errorf("core: rebalance placement: %w", err)
	}
	r.prof, r.dec, r.pl = prof, dec, pl
	return nil
}

// Adopt installs a pre-solved partitioning: the profile and decision come
// from the online replanner (internal/adapt), which already ran the LP
// once, priced the migration, and passed its hysteresis gate — re-solving
// per replica (as Rebalance does) could in principle land each replica on
// a different equal-objective vertex, and would waste a solve per pool
// member. Only the mapping tables change; the hardware regions are fixed,
// so dec must have been solved against this instance's Regions().
//
// The caller must respect the System single-goroutine contract: Adopt
// swaps the placement the next Run reads, so it may only be called from
// the goroutine that owns the instance (the serving layer stages updates
// and applies them at batch boundaries for exactly this reason).
func (r *ReCross) Adopt(prof *partition.Profile, dec *partition.Decision) error {
	if prof == nil || dec == nil {
		return fmt.Errorf("core: nil profile or decision")
	}
	if err := r.checkProfile(prof); err != nil {
		return err
	}
	want := r.Regions()
	if len(dec.Regions) != len(want) {
		return fmt.Errorf("core: decision has %d regions, want %d", len(dec.Regions), len(want))
	}
	for j := range want {
		if dec.Regions[j].CapBytes != want[j].CapBytes {
			return fmt.Errorf("core: decision region %q capacity %d != instance %d",
				dec.Regions[j].Name, dec.Regions[j].CapBytes, want[j].CapBytes)
		}
	}
	pl, err := partition.Build(prof, dec)
	if err != nil {
		return fmt.Errorf("core: adopt placement: %w", err)
	}
	r.prof, r.dec, r.pl = prof, dec, pl
	return nil
}

// checkProfile verifies prof describes the spec this instance was built
// with (table count and shapes).
func (r *ReCross) checkProfile(prof *partition.Profile) error {
	if len(prof.Spec.Tables) != len(r.cfg.Spec.Tables) {
		return fmt.Errorf("core: profile covers %d tables, spec has %d",
			len(prof.Spec.Tables), len(r.cfg.Spec.Tables))
	}
	for i, t := range prof.Spec.Tables {
		have := r.cfg.Spec.Tables[i]
		if t.Rows != have.Rows || t.VecLen != have.VecLen {
			return fmt.Errorf("core: profile table %q shape %dx%d != spec %dx%d",
				t.Name, t.Rows, t.VecLen, have.Rows, have.VecLen)
		}
	}
	return nil
}

// RunTraining executes one online-training step (§4.5): the batch's
// embedding gathers run through the NMP hierarchy as in Run, and afterwards
// the host writes the updated embedding rows back — one write per distinct
// row the batch touched, to its mapped physical location. Update writes
// come from the host, occupy the channel DQ, and respect tWR/tWTR.
func (r *ReCross) RunTraining(b trace.Batch) (*arch.RunStats, error) {
	geo := r.geo
	scr := &r.scr
	reqs := scr.reqs[:0]
	var lookups int64
	var opID int32
	var seq int64
	instr := arch.InstrCycles(dram.NMPTwoStage, r.bursts)

	if scr.touchedRows == nil {
		scr.touchedRows = map[trainKey]bool{}
	}
	clear(scr.touchedRows)
	touched := scr.touchedRows
	// Cold rows gather (and write back) over the flash link, not the
	// channel; their slots are priced by the flash Sim after the drain.
	coldSlots := scr.coldSlots[:0]
	var coldOps int64
	for _, s := range b {
		for _, op := range s {
			op = r.dedup.Dedup(op)
			opCold := false
			for _, idx := range op.Indices {
				lookups++
				touched[trainKey{op.Table, idx}] = true
				region, slot := r.pl.Locate(op.Table, idx)
				if region == RegionCold {
					if r.coldSim == nil {
						return nil, fmt.Errorf("core: cold placement without a cold tier")
					}
					coldSlots = append(coldSlots, slot)
					opCold = true
					continue
				}
				loc, err := arch.Stripe(geo, r.regionBanks[region], slot, r.bursts)
				if err != nil {
					return nil, err
				}
				reqs = append(reqs, memctrl.Request{
					Loc: loc, Cols: r.bursts,
					Consumer: r.consumers[region],
					Arrival:  sim.Cycle(seq) * instr, Op: opID,
				})
				seq++
			}
			if opCold {
				coldOps++
			}
			opID++
		}
	}
	ops := int64(opID)
	// The gradient write-back phase: one write per distinct touched row,
	// dependent on the forward results, so it arrives after the gathers.
	writeArrival := sim.Cycle(seq) * instr
	writes := int64(0)
	for k := range touched {
		region, slot := r.pl.Locate(k.table, k.row)
		if region == RegionCold {
			// Update writes to flash rows ride the same page path as the
			// gathers; charge them as another slot touch.
			coldSlots = append(coldSlots, slot)
			continue
		}
		loc, err := arch.Stripe(geo, r.regionBanks[region], slot, r.bursts)
		if err != nil {
			return nil, err
		}
		reqs = append(reqs, memctrl.Request{
			Loc: loc, Cols: r.bursts, Write: true,
			Arrival: writeArrival, Op: opID,
		})
		writes++
	}
	scr.coldSlots = coldSlots
	// Map iteration order is random; restore the op-order invariant the
	// controller requires (all writes share one op id, so sorting is not
	// needed — they are appended after every read op).
	scr.reqs = reqs

	finish, st, res, err := r.runChannel(reqs, int(ops)*r.bursts)
	if err != nil {
		return nil, err
	}
	var coldCycles sim.Cycle
	var coldReads, coldHits int64
	if len(coldSlots) > 0 {
		coldCycles, coldReads, coldHits = r.coldSim.Batch(coldSlots, int(coldOps))
		if coldCycles > finish {
			finish = coldCycles
		}
	}
	opsStats := arch.ReduceOps(lookups, ops*int64(geo.Ranks), r.vecLen)
	rs := &arch.RunStats{
		Cycles:        finish,
		DRAM:          st,
		Ops:           opsStats,
		RowHits:       res.RowHits,
		RowMisses:     res.RowMisses,
		Lookups:       lookups,
		ColdLookups:   int64(len(coldSlots)),
		ColdPageReads: coldReads,
		ColdPageHits:  coldHits,
		ColdCycles:    coldCycles,
	}
	rs.Imbalance = 1
	rs.Energy = energy.Account(r.cfg.Energy, st, opsStats, finish, geo.Ranks, geo.BurstBytes)
	return rs, nil
}
