package chaos

import (
	"fmt"
	"time"
)

// Cluster-tier fault injection: the kinds (NodeKill, NodePartition,
// NodeSlow in the Kind enum), rates, scripted rules and campaign
// config live here beside their replica- and storage-tier siblings;
// the wrapper applying them (FaultyNode) lives in internal/cluster,
// at the cluster.Node seam it wraps. (It cannot live here: this
// package is imported by internal/serve's tests, and the seam's types
// come from serve, so a chaos -> cluster -> serve import would cycle
// through the test binary.) Injector is shared across all three tiers
// — one campaign can span replica batches, device pages and whole
// nodes.

// ErrNodeKilled is returned by a killed node's calls until Revive.
var ErrNodeKilled = fmt.Errorf("chaos: node killed")

// NodeRates are per-Lookup injection probabilities in [0,1], checked
// in the order Kill, Partition, Slow (at most one fault per call).
// Kill is sticky: once drawn, every later call fails until Revive.
type NodeRates struct {
	Kill, Partition, Slow float64
}

// Zero reports whether no probabilistic injection is configured.
func (r NodeRates) Zero() bool {
	return r.Kill == 0 && r.Partition == 0 && r.Slow == 0
}

// NodeRule scripts one exact node fault: node Node (as passed to the
// wrapper) injects Kind on its Call'th Lookup (1-based). Like replica
// Rules, scheduled node faults fire regardless of Rates and of the
// injector switch — the deterministic backbone of a cluster chaos
// test. Kind must be NodeKill, NodePartition or NodeSlow.
type NodeRule struct {
	Node int
	Call int64
	Kind Kind
}

// ConnRates are per-frame-write injection probabilities in [0,1] for
// the binary transport, checked in the order Torn, Reset, Stall (at
// most one fault per write). They fault the shared connection under
// the multiplexer, not one call: a torn frame or reset fails every
// request in flight on that conn, which is exactly the blast radius
// the per-conn pending tables must contain.
type ConnRates struct {
	Torn, Reset, Stall float64
}

// Zero reports whether no conn-level injection is configured.
func (r ConnRates) Zero() bool {
	return r.Torn == 0 && r.Reset == 0 && r.Stall == 0
}

// NodeConfig configures node-level fault injection.
type NodeConfig struct {
	// Rates are the per-Lookup fault probabilities.
	Rates NodeRates
	// Conn are the per-frame-write fault probabilities applied by the
	// binary transport's FaultyConn wrapper (JSON/HTTP peers ignore
	// them; the HTTP stack owns its own sockets).
	Conn ConnRates
	// Stall is the NodeSlow stall duration (default 2ms).
	Stall time.Duration
	// WriteStall is the ConnStall write delay (default 1ms).
	WriteStall time.Duration
	// Schedule scripts exact per-node faults on top of Rates.
	Schedule []NodeRule
	// Downtime auto-revives a killed node once this much time has
	// passed since the kill (0 = sticky until Revive). Without it a
	// probabilistic-kill soak decays monotonically: the health gate
	// keeps failing probes, so the prober can never re-admit and the
	// whole fleet eventually dies.
	Downtime time.Duration
	// Seed seeds node i's RNG with Seed+i (default 1).
	Seed int64
}

// WithDefaults fills the zero-value defaults.
func (c NodeConfig) WithDefaults() NodeConfig {
	if c.Stall == 0 {
		c.Stall = 2 * time.Millisecond
	}
	if c.WriteStall == 0 {
		c.WriteStall = time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Record counts one injected fault of kind k — the counter hook for
// fault wrappers living outside this package (the cluster tier's
// FaultyNode).
func (inj *Injector) Record(k Kind) {
	if k >= 0 && k < numKinds {
		inj.counts[k].Add(1)
	}
}
