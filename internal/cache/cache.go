// Package cache implements a set-associative LRU cache model, used for the
// CPU baseline's last-level cache (32 MB, Table 2) and RecNMP's 1 MB
// per-rank-PE hot-entry cache (§5.1). Only hit/miss behaviour is modelled;
// latency and energy are priced by the callers.
package cache

import "fmt"

// Cache is a set-associative LRU cache over byte addresses.
type Cache struct {
	lineBytes uint64
	sets      uint64
	ways      int
	// tags[set*ways + way]; 0 means empty (tag values are shifted +1).
	tags []uint64
	// age[set*ways + way]: larger is more recent.
	age  []uint64
	tick uint64

	hits, misses int64
}

// New builds a cache of sizeBytes total capacity with the given
// associativity and line size. sizeBytes must be a multiple of
// ways*lineBytes and the set count must be a power of two.
func New(sizeBytes, lineBytes uint64, ways int) (*Cache, error) {
	if lineBytes == 0 || sizeBytes == 0 || ways <= 0 {
		return nil, fmt.Errorf("cache: zero size, line, or ways")
	}
	if sizeBytes%(lineBytes*uint64(ways)) != 0 {
		return nil, fmt.Errorf("cache: size %d not divisible by ways*line (%d)", sizeBytes, lineBytes*uint64(ways))
	}
	sets := sizeBytes / (lineBytes * uint64(ways))
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cache: set count %d not a power of two", sets)
	}
	return &Cache{
		lineBytes: lineBytes,
		sets:      sets,
		ways:      ways,
		tags:      make([]uint64, sets*uint64(ways)),
		age:       make([]uint64, sets*uint64(ways)),
	}, nil
}

// Access touches addr, returning true on hit. On miss the line is filled,
// evicting the set's LRU way.
func (c *Cache) Access(addr uint64) bool {
	line := addr / c.lineBytes
	set := line & (c.sets - 1)
	tag := line + 1 // +1 so a zero slot can mean "empty"
	base := set * uint64(c.ways)
	c.tick++

	lruWay, lruAge := 0, c.age[base]
	for w := 0; w < c.ways; w++ {
		if c.tags[base+uint64(w)] == tag {
			c.age[base+uint64(w)] = c.tick
			c.hits++
			return true
		}
		if c.age[base+uint64(w)] < lruAge {
			lruWay, lruAge = w, c.age[base+uint64(w)]
		}
	}
	c.tags[base+uint64(lruWay)] = tag
	c.age[base+uint64(lruWay)] = c.tick
	c.misses++
	return false
}

// Contains reports whether addr is resident without touching LRU state.
func (c *Cache) Contains(addr uint64) bool {
	line := addr / c.lineBytes
	set := line & (c.sets - 1)
	tag := line + 1
	base := set * uint64(c.ways)
	for w := 0; w < c.ways; w++ {
		if c.tags[base+uint64(w)] == tag {
			return true
		}
	}
	return false
}

// Warm preloads addr without counting a hit or miss.
func (c *Cache) Warm(addr uint64) {
	if c.Contains(addr) {
		return
	}
	c.Access(addr)
	c.misses--
}

// Hits and Misses return the access counters.
func (c *Cache) Hits() int64   { return c.hits }
func (c *Cache) Misses() int64 { return c.misses }

// HitRate returns hits/(hits+misses), or 0 before any access.
func (c *Cache) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}

// LineBytes returns the line size.
func (c *Cache) LineBytes() uint64 { return c.lineBytes }

// Reset clears contents and counters.
func (c *Cache) Reset() {
	for i := range c.tags {
		c.tags[i] = 0
		c.age[i] = 0
	}
	c.tick, c.hits, c.misses = 0, 0, 0
}
