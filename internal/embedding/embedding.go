// Package embedding provides the functional model of the DLRM embedding
// layer (paper §2.1): embedding tables, gather (table lookup) and pooling
// (weighted-sum reduction) operations. It is the ground truth the NMP
// architectures' reduced results are validated against bit-for-bit.
//
// Production tables reach billions of parameters, so the default Table is
// procedural: row values are derived deterministically from (table, row,
// element) with a splitmix-style hash, giving reproducible "stored" data
// with zero resident memory. Small materialized tables are also provided
// for training-style use (the DLRM example).
package embedding

import (
	"fmt"
	"math"

	"recross/internal/trace"
)

// Table is a read-only embedding table.
type Table interface {
	// Rows returns the number of embedding rows.
	Rows() int64
	// VecLen returns the embedding dimension.
	VecLen() int
	// Row writes row i's vector into dst (len == VecLen) and returns dst.
	Row(i int64, dst []float32) []float32
}

// Procedural is a deterministic, zero-memory table: element (i, j) of table
// `id` is a pseudorandom value in [-1, 1) derived by hashing.
type Procedural struct {
	id     uint64
	rows   int64
	vecLen int
}

// NewProcedural builds a procedural table.
func NewProcedural(id uint64, rows int64, vecLen int) (*Procedural, error) {
	if rows <= 0 || vecLen <= 0 {
		return nil, fmt.Errorf("embedding: invalid table shape %dx%d", rows, vecLen)
	}
	return &Procedural{id: id, rows: rows, vecLen: vecLen}, nil
}

func (t *Procedural) Rows() int64 { return t.rows }

func (t *Procedural) VecLen() int { return t.vecLen }

func (t *Procedural) Row(i int64, dst []float32) []float32 {
	if i < 0 || i >= t.rows {
		panic(fmt.Sprintf("embedding: row %d out of [0,%d)", i, t.rows))
	}
	if len(dst) != t.vecLen {
		panic(fmt.Sprintf("embedding: dst length %d != %d", len(dst), t.vecLen))
	}
	seed := splitmix(t.id*0x9E3779B97F4A7C15 + uint64(i) + 1)
	for j := range dst {
		seed = splitmix(seed)
		// Map the top 24 bits to [-1, 1).
		dst[j] = float32(seed>>40)/float32(1<<23) - 1
	}
	return dst
}

// splitmix is the SplitMix64 finalizer — a high-quality 64-bit mixer.
func splitmix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Dense is a materialized table backed by a flat float32 slice.
type Dense struct {
	data   []float32
	rows   int64
	vecLen int
}

// NewDense allocates a zeroed rows x vecLen table.
func NewDense(rows int64, vecLen int) (*Dense, error) {
	if rows <= 0 || vecLen <= 0 {
		return nil, fmt.Errorf("embedding: invalid table shape %dx%d", rows, vecLen)
	}
	return &Dense{data: make([]float32, rows*int64(vecLen)), rows: rows, vecLen: vecLen}, nil
}

func (t *Dense) Rows() int64 { return t.rows }

func (t *Dense) VecLen() int { return t.vecLen }

func (t *Dense) Row(i int64, dst []float32) []float32 {
	if i < 0 || i >= t.rows {
		panic(fmt.Sprintf("embedding: row %d out of [0,%d)", i, t.rows))
	}
	copy(dst, t.data[i*int64(t.vecLen):(i+1)*int64(t.vecLen)])
	return dst
}

// SetRow overwrites row i.
func (t *Dense) SetRow(i int64, v []float32) error {
	if i < 0 || i >= t.rows {
		return fmt.Errorf("embedding: row %d out of [0,%d)", i, t.rows)
	}
	if len(v) != t.vecLen {
		return fmt.Errorf("embedding: vector length %d != %d", len(v), t.vecLen)
	}
	copy(t.data[i*int64(t.vecLen):], v)
	return nil
}

// Layer is the embedding layer of one model: one table per sparse feature.
type Layer struct {
	tables []Table
}

// NewLayer builds a layer of procedural tables matching spec.
func NewLayer(spec trace.ModelSpec) (*Layer, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	l := &Layer{tables: make([]Table, len(spec.Tables))}
	for i, ts := range spec.Tables {
		t, err := NewProcedural(uint64(i)+1, ts.Rows, ts.VecLen)
		if err != nil {
			return nil, err
		}
		l.tables[i] = t
	}
	return l, nil
}

// NewLayerFromTables wraps explicit tables (e.g. trained Dense ones).
func NewLayerFromTables(tables []Table) (*Layer, error) {
	if len(tables) == 0 {
		return nil, fmt.Errorf("embedding: no tables")
	}
	return &Layer{tables: tables}, nil
}

// Tables returns the number of tables.
func (l *Layer) Tables() int { return len(l.tables) }

// Table returns table ti.
func (l *Layer) Table(ti int) Table { return l.tables[ti] }

// Reduce executes one embedding operation functionally: gather op.Indices
// from the table and pool them under op.Kind. This is the reference the
// NMP results must match.
func (l *Layer) Reduce(op trace.Op) ([]float32, error) {
	if op.Table < 0 || op.Table >= len(l.tables) {
		return nil, fmt.Errorf("embedding: table %d out of range", op.Table)
	}
	if op.Kind == trace.WeightedSum && len(op.Indices) != len(op.Weights) {
		return nil, fmt.Errorf("embedding: %d indices but %d weights", len(op.Indices), len(op.Weights))
	}
	t := l.tables[op.Table]
	out := make([]float32, t.VecLen())
	row := make([]float32, t.VecLen())
	for k, idx := range op.Indices {
		if idx < 0 || idx >= t.Rows() {
			return nil, fmt.Errorf("embedding: index %d out of [0,%d)", idx, t.Rows())
		}
		t.Row(idx, row)
		switch op.Kind {
		case trace.Sum:
			for j := range out {
				out[j] += row[j]
			}
		case trace.Max:
			if k == 0 {
				copy(out, row)
			} else {
				for j := range out {
					if row[j] > out[j] {
						out[j] = row[j]
					}
				}
			}
		case trace.WeightedSum:
			w := op.Weights[k]
			for j := range out {
				out[j] += w * row[j]
			}
		default:
			return nil, fmt.Errorf("embedding: unknown reduce kind %d", op.Kind)
		}
	}
	return out, nil
}

// ReduceSample reduces every op of a sample, returning one vector per op.
func (l *Layer) ReduceSample(s trace.Sample) ([][]float32, error) {
	out := make([][]float32, len(s))
	for i, op := range s {
		v, err := l.Reduce(op)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// AlmostEqual reports whether two vectors agree within tol elementwise —
// reductions may reassociate FP32 adds across PEs.
func AlmostEqual(a, b []float32, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(float64(a[i]-b[i])) > tol {
			return false
		}
	}
	return true
}
