package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	h.Add(1)
	h.Add(1)
	h.Add(2)
	h.AddN(3, 5)
	if h.Total() != 8 {
		t.Fatalf("total = %d, want 8", h.Total())
	}
	if h.Distinct() != 3 {
		t.Fatalf("distinct = %d, want 3", h.Distinct())
	}
	if h.Count(1) != 2 || h.Count(3) != 5 || h.Count(99) != 0 {
		t.Fatalf("counts wrong: %d %d %d", h.Count(1), h.Count(3), h.Count(99))
	}
	sc := h.SortedCounts()
	if len(sc) != 3 || sc[0] != 5 || sc[1] != 2 || sc[2] != 1 {
		t.Fatalf("sorted counts = %v", sc)
	}
}

func TestHistogramZeroValueUsable(t *testing.T) {
	var h Histogram
	h.Add(7)
	if h.Total() != 1 || h.Count(7) != 1 {
		t.Fatal("zero-value histogram not usable")
	}
}

func TestHotKeysOrderAndTies(t *testing.T) {
	h := NewHistogram()
	h.AddN(10, 3)
	h.AddN(20, 3)
	h.AddN(30, 9)
	h.AddN(40, 1)
	keys := h.HotKeys(3)
	if len(keys) != 3 || keys[0] != 30 || keys[1] != 10 || keys[2] != 20 {
		t.Fatalf("hot keys = %v, want [30 10 20]", keys)
	}
	if got := h.HotKeys(100); len(got) != 4 {
		t.Fatalf("HotKeys over-count: %v", got)
	}
}

func TestAccessCDFSkewedCurve(t *testing.T) {
	// 1 key with 90 accesses + 9 keys with 1 access each, universe 100:
	// the hottest 1% of keys covers 90/99 of accesses.
	h := NewHistogram()
	h.AddN(0, 90)
	for k := int64(1); k <= 9; k++ {
		h.Add(k)
	}
	c, err := AccessCDF(h, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.At(0.01); math.Abs(got-90.0/99.0) > 1e-9 {
		t.Fatalf("At(0.01) = %g, want %g", got, 90.0/99.0)
	}
	if got := c.At(1); got != 1 {
		t.Fatalf("At(1) = %g, want 1", got)
	}
	if got := c.At(0); got != 0 {
		t.Fatalf("At(0) = %g, want 0", got)
	}
	// Past all observed keys, the curve saturates at 1 (the tail is cold).
	if got := c.At(0.5); got != 1 {
		t.Fatalf("At(0.5) = %g, want 1", got)
	}
}

func TestAccessCDFErrors(t *testing.T) {
	h := NewHistogram()
	h.Add(0)
	h.Add(1)
	if _, err := AccessCDF(h, 1); err == nil {
		t.Fatal("universe smaller than observed keys should error")
	}
	if _, err := AccessCDF(NewHistogram(), 0); err == nil {
		t.Fatal("empty universe should error")
	}
}

// Property: a CDF is monotone nondecreasing in p and bounded by [0,1].
func TestCDFMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := NewHistogram()
		n := rng.Intn(200) + 1
		for i := 0; i < n; i++ {
			h.AddN(int64(rng.Intn(50)), int64(rng.Intn(20)+1))
		}
		c, err := AccessCDF(h, 50+rng.Intn(100))
		if err != nil {
			return false
		}
		prev := 0.0
		for p := 0.0; p <= 1.0001; p += 0.01 {
			v := c.At(p)
			if v < prev-1e-12 || v < 0 || v > 1+1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestImbalanceRatio(t *testing.T) {
	cases := []struct {
		loads []int64
		want  float64
	}{
		{[]int64{10, 10, 10, 10}, 1},
		{[]int64{40, 0, 0, 0}, 4},
		{[]int64{30, 10}, 1.5},
		{nil, 1},
		{[]int64{0, 0}, 1},
	}
	for _, c := range cases {
		if got := ImbalanceRatio(c.loads); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("ImbalanceRatio(%v) = %g, want %g", c.loads, got, c.want)
		}
	}
}

// Property: imbalance ratio is always >= 1 and <= number of nodes.
func TestImbalanceBoundsProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		loads := make([]int64, len(raw))
		for i, v := range raw {
			loads[i] = int64(v)
		}
		r := ImbalanceRatio(loads)
		return r >= 1-1e-12 && r <= float64(len(loads))+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeanGeoMeanPercentile(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("mean wrong")
	}
	if Mean(nil) != 0 {
		t.Fatal("mean of empty should be 0")
	}
	if g := GeoMean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Fatalf("geomean = %g, want 4", g)
	}
	if !math.IsNaN(GeoMean([]float64{1, -1})) {
		t.Fatal("geomean of nonpositive should be NaN")
	}
	xs := []float64{5, 1, 3, 2, 4}
	if p := Percentile(xs, 50); p != 3 {
		t.Fatalf("median = %g, want 3", p)
	}
	if p := Percentile(xs, 0); p != 1 {
		t.Fatalf("p0 = %g, want 1", p)
	}
	if p := Percentile(xs, 100); p != 5 {
		t.Fatalf("p100 = %g, want 5", p)
	}
	// input must not be reordered
	if xs[0] != 5 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestMaxSumI64(t *testing.T) {
	if MaxI64([]int64{3, 9, 2}) != 9 || MaxI64(nil) != 0 {
		t.Fatal("MaxI64 wrong")
	}
	if SumI64([]int64{3, 9, 2}) != 14 {
		t.Fatal("SumI64 wrong")
	}
}
