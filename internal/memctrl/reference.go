package memctrl

import (
	"fmt"

	"recross/internal/dram"
	"recross/internal/sim"
)

// Reference is the original O(banks)-per-command scheduler, kept as the
// correctness oracle for the fast arbiter: every pick re-scans all banks
// and re-issues the Earliest* timing queries for every candidate. The fast
// path (Controller.Drain) must produce bit-identical Result and
// dram.Stats; the differential fuzzer in this package enforces it.
//
// Reference embeds Controller so the two share every configuration knob
// (InflightLimit, OpWindowLimit, write watermarks); only Drain differs.
type Reference struct {
	Controller
}

// NewReference builds a reference scheduler over ch with the same
// semantics as New.
func NewReference(ch *dram.Channel, policy Policy, window int) (*Reference, error) {
	c, err := New(ch, policy, window)
	if err != nil {
		return nil, err
	}
	return &Reference{Controller: *c}, nil
}

// Drain issues every request with the full-scan scheduler.
func (r *Reference) Drain(reqs []Request) (Result, error) {
	return r.refDrain(reqs)
}

// pending is the in-flight form of a Request.
type pending struct {
	req      *Request
	idx      int // index in the input slice
	nextCol  int // next column to read (0-based offset from Loc.Col)
	acted    bool
	admitted sim.Cycle // when the request got its controller queue slot
}

// bankQueue holds one bank's pending requests plus the cached scheduling
// choice. pos < 0 means the choice must be recomputed. For SALP banks a
// secondary lookahead-activation candidate (pos2) lets the controller
// activate an idle subarray for a younger request while an older one is
// still streaming — the overlap of the paper's Fig. 6(c).
type bankQueue struct {
	q     []*pending
	pos   int
	isRD  bool
	class int // 0 row-hit RD, 1 idle activation, 2 conflict activation
	pos2  int // lookahead ACT candidate, -1 if none
}

// refWCand is a write candidate deferred during the first pick pass.
type refWCand struct {
	fb, pos int
	isRD    bool
	class   int
}

// refDrain is the reference drain loop (the pre-fast-path Drain).
func (c *Controller) refDrain(reqs []Request) (Result, error) {
	geo := c.ch.Geo
	res := Result{Done: make([]sim.Cycle, len(reqs))}
	if len(reqs) == 0 {
		return res, nil
	}

	if err := c.validate(reqs); err != nil {
		return res, err
	}
	opOrder := []int32{}
	opStart := map[int32]sim.Cycle{}
	opEnd := map[int32]sim.Cycle{}
	for i := range reqs {
		r := &reqs[i]
		if at, ok := opStart[r.Op]; !ok || r.Arrival < at {
			if !ok {
				opOrder = append(opOrder, r.Op)
			}
			opStart[r.Op] = r.Arrival
		}
	}
	queues := make([]bankQueue, geo.TotalBanks())
	limit := c.InflightLimit
	if limit <= 0 {
		limit = DefaultInflight
	}

	// Op-window bookkeeping: opLeft[k] counts incomplete requests of op k;
	// watermark is the lowest incomplete op.
	var opLeft map[int32]int
	var watermark int32
	if c.OpWindowLimit > 0 {
		opLeft = make(map[int32]int)
		for i := range reqs {
			if i > 0 && reqs[i].Op < reqs[i-1].Op {
				return res, fmt.Errorf("memctrl: requests not in op order with an op window")
			}
			opLeft[reqs[i].Op]++
		}
		if len(reqs) > 0 {
			watermark = reqs[0].Op
		}
	}
	opEligible := func(i int) bool {
		return c.OpWindowLimit <= 0 ||
			int(reqs[i].Op-watermark) < c.OpWindowLimit
	}

	// admit places request i into its bank queue, no earlier than `at`
	// (the time the queue slot freed).
	admit := func(i int, at sim.Cycle) {
		r := &reqs[i]
		fb := geo.FlatBank(r.Loc)
		p := &pending{req: r, idx: i, admitted: at}
		queues[fb].q = append(queues[fb].q, p)
		queues[fb].pos = -1
	}
	inflight := 0
	pendingWrites := 0
	next := 0 // next unadmitted request
	for ; next < len(reqs) && next < limit && opEligible(next); next++ {
		admit(next, 0)
		inflight++
		if reqs[next].Write {
			pendingWrites++
		}
	}

	// Write-drain watermarks.
	hi := c.WriteHighWatermark
	if hi <= 0 {
		hi = 16
	}
	lo := c.WriteLowWatermark
	if lo <= 0 {
		lo = 2
	}
	draining := false

	remaining := len(reqs)
	now := sim.Cycle(0)
	for remaining > 0 {
		if pendingWrites >= hi {
			draining = true
		} else if pendingWrites <= lo {
			draining = false
		}
		fb, pos, isRD, earliest, ok := c.pick(queues, now, draining)
		if !ok {
			return res, fmt.Errorf("memctrl: no candidate with %d requests remaining", remaining)
		}
		bq := &queues[fb]
		p := bq.q[pos]
		loc := p.req.Loc
		loc.Col += p.nextCol
		if isRD {
			var done sim.Cycle
			if p.req.Write {
				_, done = c.ch.IssueWR(loc, earliest)
			} else {
				_, done = c.ch.IssueRD(loc, p.req.Consumer, earliest)
			}
			p.nextCol++
			if p.nextCol == p.req.Cols {
				res.Done[p.idx] = done
				if done > res.Finish {
					res.Finish = done
				}
				if done > opEnd[p.req.Op] {
					opEnd[p.req.Op] = done
				}
				if p.acted {
					res.RowMisses++
				} else {
					res.RowHits++
				}
				bq.q = append(bq.q[:pos], bq.q[pos+1:]...)
				remaining--
				inflight--
				if p.req.Write {
					pendingWrites--
				}
				if opLeft != nil {
					opLeft[p.req.Op]--
					for opLeft[watermark] == 0 && int(watermark) < int(reqs[len(reqs)-1].Op)+1 {
						delete(opLeft, watermark)
						watermark++
					}
				}
				// Queue slots free when data is delivered; admit the
				// next requests (in arrival order) that fit both the
				// slot budget and the op window.
				for inflight < limit && next < len(reqs) && opEligible(next) {
					admit(next, done)
					if reqs[next].Write {
						pendingWrites++
					}
					next++
					inflight++
				}
			}
		} else {
			c.ch.IssueACT(loc, earliest)
			p.acted = true
		}
		bq.pos = -1 // this bank's state changed; rechoose next time
		if earliest > now {
			now = earliest
		}
	}
	for _, op := range opOrder {
		res.OpLatency = append(res.OpLatency, opEnd[op]-opStart[op])
	}
	return res, nil
}

// pick returns the command that can issue first across all banks (primary
// cached choices plus SALP lookahead activations), with priority classes
// breaking ties at equal cycles. Unless the write queue is draining, write
// commands are considered only when no read command is available: the scan
// collects deferred write candidates, and a second pass over just that
// list (not the full bank array, and without re-running the Earliest*
// queries of read candidates) evaluates them when the first pass found no
// read — the same answer the old recursive pick(draining=true) produced,
// since in that situation the recursion's candidate set was exactly the
// deferred writes, visited in the same order.
func (c *Controller) pick(queues []bankQueue, now sim.Cycle, draining bool) (bank, pos int, isRD bool, earliest sim.Cycle, ok bool) {
	bestBank := -1
	bestPos := 0
	bestRD := false
	var bestTime sim.Cycle
	bestClass := 0
	var bestArrival sim.Cycle
	writes := c.refWrites[:0]

	eval := func(fb, pos int, isRD bool, class int) {
		p := queues[fb].q[pos]
		loc := p.req.Loc
		loc.Col += p.nextCol
		at := now
		if p.req.Arrival > at {
			at = p.req.Arrival
		}
		if p.admitted > at {
			at = p.admitted
		}
		var t sim.Cycle
		switch {
		case isRD && p.req.Write:
			t = c.ch.EarliestWR(loc, at)
		case isRD:
			t = c.ch.EarliestRD(loc, p.req.Consumer, at)
		default:
			t = c.ch.EarliestACT(loc, at)
		}
		if bestBank < 0 || t < bestTime ||
			(t == bestTime && (class < bestClass ||
				(class == bestClass && p.req.Arrival < bestArrival))) {
			bestBank, bestPos, bestRD = fb, pos, isRD
			bestTime, bestClass, bestArrival = t, class, p.req.Arrival
		}
	}
	consider := func(fb, pos int, isRD bool, class int) {
		if !draining && queues[fb].q[pos].req.Write {
			writes = append(writes, refWCand{fb: fb, pos: pos, isRD: isRD, class: class})
			return
		}
		eval(fb, pos, isRD, class)
	}

	for fb := range queues {
		bq := &queues[fb]
		if len(bq.q) == 0 {
			continue
		}
		if bq.pos < 0 {
			c.choose(bq)
		}
		consider(fb, bq.pos, bq.isRD, bq.class)
		if bq.pos2 >= 0 && bq.pos2 < len(bq.q) {
			consider(fb, bq.pos2, false, 1)
		}
	}
	if bestBank < 0 && len(writes) > 0 {
		// No read can issue: let the writes through after all.
		for _, w := range writes {
			eval(w.fb, w.pos, w.isRD, w.class)
		}
	}
	c.refWrites = writes[:0]
	if bestBank < 0 {
		return 0, 0, false, 0, false
	}
	return bestBank, bestPos, bestRD, bestTime, true
}

// choose recomputes the bank's scheduling choice: the oldest row-hit within
// the window if any (first-ready), otherwise the queue head's activation.
// For SALP banks it additionally records a lookahead activation: the oldest
// windowed request targeting an idle subarray, which can be activated
// underneath an ongoing row-hit stream (subarray activation overlap).
func (c *Controller) choose(bq *bankQueue) {
	bq.pos2 = -1
	limit := len(bq.q)
	if limit > c.window {
		limit = c.window
	}
	hit := -1
	fb := -1
	for pos := 0; pos < limit; pos++ {
		p := bq.q[pos]
		loc := p.req.Loc
		loc.Col += p.nextCol
		if fb < 0 {
			fb = c.ch.Geo.FlatBank(loc)
		}
		if c.ch.RowOpen(loc) {
			if hit < 0 {
				hit = pos
			}
			continue
		}
		if bq.pos2 < 0 && pos > 0 && !p.acted && c.ch.IsSALP(fb) {
			if _, open := c.ch.OpenRowAt(loc); !open {
				bq.pos2 = pos // idle-subarray lookahead activation
			}
		}
	}
	if hit >= 0 {
		bq.pos, bq.isRD, bq.class = hit, true, 0
		return
	}
	head := bq.q[0]
	loc := head.req.Loc
	loc.Col += head.nextCol
	class := 1
	if _, open := c.ch.OpenRowAt(loc); open {
		class = 2 // needs a (local) precharge first
	}
	if c.policy == FRFCFS {
		// Plain FR-FCFS does not distinguish idle activations from
		// conflicts: all non-hits are served oldest-first. The split is
		// exactly what LAS adds (paper §4.1).
		class = 1
	}
	bq.pos, bq.isRD, bq.class = 0, false, class
	if bq.pos2 == 0 {
		bq.pos2 = -1
	}
}
