package chaos

import (
	"sync"
	"testing"
	"time"

	"recross/internal/coldstore"
)

// memDev is a trivial in-memory page device for wrapper-level tests.
type memDev struct {
	mu        sync.Mutex
	pages     map[int64][]byte
	pageBytes int
}

func newMemDev(pageBytes int) *memDev {
	return &memDev{pages: map[int64][]byte{}, pageBytes: pageBytes}
}

func (d *memDev) ReadPage(page int64, dst []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if p, ok := d.pages[page]; ok {
		copy(dst, p)
		return nil
	}
	for i := range dst {
		dst[i] = 0
	}
	return nil
}

func (d *memDev) WritePage(page int64, src []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	p := make([]byte, d.pageBytes)
	copy(p, src)
	d.pages[page] = p
	return nil
}

// faultTrace replays n reads through a wrapper and records which ops
// errored and which returned damaged payloads.
func faultTrace(d *FaultyColdStore, ref *memDev, n int) string {
	want := make([]byte, ref.pageBytes)
	got := make([]byte, ref.pageBytes)
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		page := int64(i % 4)
		ref.ReadPage(page, want)
		err := d.ReadPage(page, got)
		switch {
		case err != nil:
			out[i] = 'e'
		case string(got) != string(want):
			out[i] = 'c'
		default:
			out[i] = '.'
		}
	}
	return string(out)
}

// TestColdFaultDeterminism checks the fault sequence is a pure function of
// (seed, operation sequence): same seed replays identically, a different
// seed diverges.
func TestColdFaultDeterminism(t *testing.T) {
	mk := func(seed int64) (*FaultyColdStore, *memDev) {
		ref := newMemDev(64)
		for p := int64(0); p < 4; p++ {
			buf := make([]byte, 64)
			for i := range buf {
				buf[i] = byte(p)
			}
			ref.WritePage(p, buf)
		}
		cfg := ColdConfig{Rates: ColdRates{ReadErr: 0.1, CorruptPage: 0.1}, Seed: seed}
		return WrapColdDevice(ref, cfg, nil), ref
	}
	a, refA := mk(7)
	b, refB := mk(7)
	c, refC := mk(8)
	ta, tb, tc := faultTrace(a, refA, 200), faultTrace(b, refB, 200), faultTrace(c, refC, 200)
	if ta != tb {
		t.Fatalf("same seed diverged:\n%s\n%s", ta, tb)
	}
	if ta == tc {
		t.Fatalf("different seeds produced identical fault sequences")
	}
	var faults int
	for _, ch := range ta {
		if ch != '.' {
			faults++
		}
	}
	if faults == 0 {
		t.Fatal("no faults injected at 20% combined rate over 200 ops")
	}
}

// TestColdScheduleFires checks scripted faults fire on their exact
// operation — regardless of the injector's enabled switch — and land in
// the shared per-kind counters.
func TestColdScheduleFires(t *testing.T) {
	ref := newMemDev(64)
	buf := make([]byte, 64)
	for i := range buf {
		buf[i] = 0xAB
	}
	ref.WritePage(0, buf)
	inj := NewInjector()
	inj.SetEnabled(false) // schedule must fire anyway
	d := WrapColdDevice(ref, ColdConfig{
		Stall: time.Millisecond,
		Schedule: []ColdRule{
			{Op: 2, Kind: ReadErr},
			{Op: 3, Kind: CorruptPage},
			{Op: 4, Kind: Stall},
			{Op: 2, Kind: TornWrite},
		},
	}, inj)
	dst := make([]byte, 64)
	if err := d.ReadPage(0, dst); err != nil { // op 1: clean
		t.Fatalf("op 1: %v", err)
	}
	if err := d.ReadPage(0, dst); err == nil { // op 2: scripted ReadErr
		t.Fatal("op 2: scripted read error did not fire")
	}
	if err := d.ReadPage(0, dst); err != nil { // op 3: scripted corruption
		t.Fatalf("op 3: %v", err)
	}
	if string(dst) == string(buf) {
		t.Fatal("op 3: scripted corruption left the page clean")
	}
	t0 := time.Now()
	if err := d.ReadPage(0, dst); err != nil { // op 4: scripted stall
		t.Fatalf("op 4: %v", err)
	}
	if time.Since(t0) < time.Millisecond {
		t.Fatal("op 4: scripted stall did not delay")
	}
	if err := d.WritePage(1, buf); err != nil { // write op 1: clean
		t.Fatalf("write 1: %v", err)
	}
	if err := d.WritePage(1, buf); err != nil { // write op 2: torn, silent
		t.Fatalf("write 2 (torn) reported: %v", err)
	}
	half := make([]byte, 64)
	ref.ReadPage(1, half)
	if string(half[:32]) != string(buf[:32]) || string(half[32:]) == string(buf[32:]) {
		t.Fatal("torn write did not persist exactly the first half")
	}
	for _, k := range []Kind{ReadErr, CorruptPage, Stall, TornWrite} {
		if inj.Count(k) != 1 {
			t.Fatalf("count(%v) = %d, want 1", k, inj.Count(k))
		}
	}
}

// coldSource is a deterministic RowSource for store-level tests.
type coldSource struct{ rows int64 }

func (c *coldSource) Rows() int64 { return c.rows }
func (c *coldSource) VecLen() int { return 16 }
func (c *coldSource) Row(i int64, dst []float32) []float32 {
	x := uint64(i)*0xBF58476D1CE4E5B9 + 0x9E3779B97F4A7C15
	for j := range dst {
		x ^= x >> 29
		x *= 0x94D049BB133111EB
		dst[j] = float32(x>>40)/float32(1<<23) - 1
	}
	return dst
}

// TestFailDeviceBreakerCycle drives a real store through a sticky device
// outage via the wrapper: the breaker opens (reads fail fast into the
// caller's fallback), RestoreDevice plus the scrubber's probes close it
// again, and post-recovery reads are bit-identical.
func TestFailDeviceBreakerCycle(t *testing.T) {
	var dev *FaultyColdStore
	cfg := coldstore.Config{
		Dir: t.TempDir(), PageBytes: 256, CacheBytes: 256, Prefetch: -1,
		Retries: -1, BreakerThreshold: 1, BreakerProbes: 1,
		BreakerCooldown: time.Hour, // only the scrubber may recover it
		ScrubInterval:   time.Millisecond,
		WrapDevice: func(d coldstore.Device) coldstore.Device {
			dev = WrapColdDevice(d, ColdConfig{}, nil)
			return dev
		},
	}
	src := &coldSource{rows: 64}
	s, err := coldstore.Open(cfg, []coldstore.RowSource{src})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()

	got := make([]float32, 16)
	want := make([]float32, 16)
	if !s.ReadRow(0, 0, got) {
		t.Fatal("healthy read failed")
	}
	dev.FailDevice()
	if !dev.Failed() {
		t.Fatal("Failed() after FailDevice")
	}
	deadline := time.Now().Add(5 * time.Second)
	for !s.Degraded() {
		if time.Now().After(deadline) {
			t.Fatalf("breaker never opened: %+v", s.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	if s.ReadRow(0, 20, got) { // uncached page through a failed device
		t.Fatal("read served during sticky outage")
	}
	dev.RestoreDevice()
	for s.Degraded() {
		if time.Now().After(deadline) {
			t.Fatalf("breaker never closed after restore: %+v", s.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	for i := int64(0); i < 64; i++ {
		if !s.ReadRow(0, i, got) {
			t.Fatalf("row %d not served after recovery", i)
		}
		src.Row(i, want)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("row %d elem %d after recovery: %v != %v", i, j, got[j], want[j])
			}
		}
	}
	st := s.Stats()
	if st.BreakerOpens == 0 || st.BreakerCloses == 0 {
		t.Fatalf("breaker transitions not counted: %+v", st)
	}
}

// TestColdCorruptionRepairedThroughWrapper checks probabilistic page
// corruption from the wrapper is always absorbed by checksum repair: the
// store never serves damaged bits and never degrades.
func TestColdCorruptionRepairedThroughWrapper(t *testing.T) {
	cfg := coldstore.Config{
		Dir: t.TempDir(), PageBytes: 256, CacheBytes: 256, Prefetch: -1,
		WrapDevice: func(d coldstore.Device) coldstore.Device {
			return WrapColdDevice(d, ColdConfig{Rates: ColdRates{CorruptPage: 0.3}, Seed: 5}, nil)
		},
	}
	src := &coldSource{rows: 256}
	s, err := coldstore.Open(cfg, []coldstore.RowSource{src})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	got := make([]float32, 16)
	want := make([]float32, 16)
	for pass := 0; pass < 3; pass++ {
		for i := int64(0); i < 256; i++ {
			if !s.ReadRow(0, i, got) {
				t.Fatalf("pass %d row %d not served", pass, i)
			}
			src.Row(i, want)
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("pass %d row %d elem %d: %v != %v", pass, i, j, got[j], want[j])
				}
			}
		}
	}
	st := s.Stats()
	if st.ChecksumFailures == 0 || st.Repairs == 0 {
		t.Fatalf("30%% corruption never hit the repair path: %+v", st)
	}
	if st.Degraded {
		t.Fatalf("repairable corruption degraded the store: %+v", st)
	}
}
