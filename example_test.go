package recross_test

import (
	"fmt"

	"recross"
)

// Build the paper's workload and inspect its scale.
func ExampleCriteoKaggle() {
	spec := recross.CriteoKaggle(64, 80)
	fmt.Println(len(spec.Tables), "tables")
	fmt.Printf("%.1f GB of embeddings\n", float64(spec.TotalBytes())/(1<<30))
	// Output:
	// 26 tables
	// 7.5 GB of embeddings
}

// Run one batch through ReCross and check the reduction offloaded fully:
// no gathered vector crossed to the host.
func ExampleNewSystem() {
	spec := recross.ModelSpec{Name: "example"}
	for i := 0; i < 4; i++ {
		spec.Tables = append(spec.Tables, recross.TableSpec{
			Name: fmt.Sprintf("example-t%d", i), Rows: 50000, VecLen: 64,
			Pooling: 8, Prob: 1, Skew: 1.1,
		})
	}
	sys, err := recross.NewSystem(recross.ReCross, recross.Config{
		Spec: spec, ProfileSamples: 200,
	})
	if err != nil {
		panic(err)
	}
	gen, err := recross.NewGenerator(spec, 7)
	if err != nil {
		panic(err)
	}
	stats, err := sys.Run(gen.Batch(4))
	if err != nil {
		panic(err)
	}
	fmt.Println("arch:", sys.Name())
	fmt.Println("finished:", stats.Cycles > 0)
	fmt.Println("host gather bursts:", stats.DRAM.BurstsToHost)
	// Output:
	// arch: recross
	// finished: true
	// host gather bursts: 0
}

// Verify the cross-level NMP reduction against the flat host reference.
func ExampleReCrossSystem_ReduceBatch() {
	spec := recross.ModelSpec{Name: "verify", Tables: []recross.TableSpec{
		{Name: "verify-t0", Rows: 1000, VecLen: 16, Pooling: 4, Prob: 1, Skew: 1},
	}}
	rc, err := recross.NewReCross(recross.DefaultReCrossConfig(spec))
	if err != nil {
		panic(err)
	}
	layer, err := recross.NewLayer(spec)
	if err != nil {
		panic(err)
	}
	gen, _ := recross.NewGenerator(spec, 3)
	batch := gen.Batch(2)
	nmp, err := rc.ReduceBatch(layer, batch)
	if err != nil {
		panic(err)
	}
	ref, err := layer.ReduceSample(batch[0])
	if err != nil {
		panic(err)
	}
	diff := float64(0)
	for j := range ref[0] {
		d := float64(nmp[0][0][j] - ref[0][j])
		if d < 0 {
			d = -d
		}
		if d > diff {
			diff = d
		}
	}
	fmt.Println("NMP result matches host reference:", diff < 1e-4)
	// Output:
	// NMP result matches host reference: true
}
