package serve

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"recross/internal/arch"
	"recross/internal/baseline"
	"recross/internal/embedding"
	"recross/internal/sim"
	"recross/internal/trace"
)

// fakeSys is a controllable replica: Run optionally blocks on gate, then
// records the batch sizes it served.
type fakeSys struct {
	gate    chan struct{} // when non-nil, Run waits until it is closed
	started chan struct{} // receives one token per Run entry, if non-nil

	mu      sync.Mutex
	sizes   []int
	lookups int64
}

func (f *fakeSys) Name() string { return "fake" }

func (f *fakeSys) Run(b trace.Batch) (*arch.RunStats, error) {
	if f.started != nil {
		f.started <- struct{}{}
	}
	if f.gate != nil {
		<-f.gate
	}
	lookups, _ := arch.CountBatch(b)
	f.mu.Lock()
	f.sizes = append(f.sizes, len(b))
	f.lookups += lookups
	f.mu.Unlock()
	return &arch.RunStats{Cycles: sim.Cycle(100 + len(b)), Lookups: lookups, Imbalance: 1}, nil
}

func (f *fakeSys) batchSizes() []int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]int(nil), f.sizes...)
}

func testSpec() trace.ModelSpec { return trace.Uniform(3, 2000, 8, 2) }

func testLayer(t *testing.T) *embedding.Layer {
	t.Helper()
	l, err := embedding.NewLayer(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func newTestServer(t *testing.T, opts Options) *Server {
	t.Helper()
	if opts.Layer == nil {
		opts.Layer = testLayer(t)
	}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func testSamples(t *testing.T, n int) []trace.Sample {
	t.Helper()
	g, err := trace.NewGenerator(testSpec(), 42)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]trace.Sample, n)
	for i := range out {
		out[i] = g.Sample()
	}
	return out
}

func TestNewValidation(t *testing.T) {
	layer := testLayer(t)
	if _, err := New(Options{Layer: layer}); err == nil {
		t.Error("no systems should error")
	}
	if _, err := New(Options{Systems: []arch.System{&fakeSys{}}}); err == nil {
		t.Error("no layer should error")
	}
	if _, err := New(Options{Systems: []arch.System{&fakeSys{}}, Layer: layer, Policy: OverloadPolicy(7)}); err == nil {
		t.Error("bogus policy should error")
	}
}

// TestLookupRejectsMalformedSample: a sample violating the trace.Op shape
// contract (no indices, or weights not parallel to indices) must be
// rejected at admission — if it reached a worker it would panic the
// replica goroutine and kill the process.
func TestLookupRejectsMalformedSample(t *testing.T) {
	s := newTestServer(t, Options{Systems: []arch.System{&fakeSys{}}})
	defer s.Close()

	for name, sample := range map[string]trace.Sample{
		"empty":           {},
		"no indices":      {{Table: 0, Kind: trace.WeightedSum}},
		"missing weights": {{Table: 0, Kind: trace.Max, Indices: []int64{1, 2}}},
		"short weights":   {{Table: 0, Kind: trace.WeightedSum, Indices: []int64{1, 2}, Weights: []float32{1}}},
	} {
		if _, err := s.Lookup(context.Background(), sample); err == nil {
			t.Errorf("%s: Lookup accepted a malformed sample", name)
		}
	}
}

// TestFlushOnSize: with a long MaxDelay, the batcher must wait for exactly
// MaxBatch samples before flushing.
func TestFlushOnSize(t *testing.T) {
	fake := &fakeSys{}
	s := newTestServer(t, Options{
		Systems:  []arch.System{fake},
		MaxBatch: 4,
		MaxDelay: time.Hour,
	})
	defer s.Close()

	samples := testSamples(t, 8)
	var wg sync.WaitGroup
	results := make([]*Result, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := s.Lookup(context.Background(), samples[i])
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	for i, res := range results {
		if res == nil {
			t.Fatalf("request %d got no result", i)
		}
		if res.BatchSize != 4 {
			t.Errorf("request %d rode batch of %d, want 4 (size-triggered flush)", i, res.BatchSize)
		}
	}
	for _, sz := range fake.batchSizes() {
		if sz != 4 {
			t.Errorf("executed batch size %d, want 4", sz)
		}
	}
}

// TestFlushOnDeadline: with a huge MaxBatch, a lone request must still be
// answered once MaxDelay elapses.
func TestFlushOnDeadline(t *testing.T) {
	fake := &fakeSys{}
	const delay = 20 * time.Millisecond
	s := newTestServer(t, Options{
		Systems:  []arch.System{fake},
		MaxBatch: 1024,
		MaxDelay: delay,
	})
	defer s.Close()

	start := time.Now()
	res, err := s.Lookup(context.Background(), testSamples(t, 1)[0])
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < delay {
		t.Errorf("answered after %v, before the %v flush deadline", elapsed, delay)
	}
	if res.BatchSize != 1 {
		t.Errorf("batch size %d, want 1 (deadline-triggered flush)", res.BatchSize)
	}
	if snap := s.Metrics().Snapshot(); snap.BatchForm.Count != 1 {
		t.Errorf("batch-formation samples = %d, want 1", snap.BatchForm.Count)
	}
}

// gatedServer builds a 1-replica server whose worker is blocked on a gate,
// then saturates every downstream stage so the admission queue is the only
// place left: 1 batch running + replicaWorkDepth queued + 1 held by the
// blocked dispatcher. Returns the server, the gate, and the in-flight
// Lookup error channel.
func gatedServer(t *testing.T, policy OverloadPolicy, queueDepth int) (*Server, *fakeSys, chan struct{}, chan error) {
	t.Helper()
	gate := make(chan struct{})
	fake := &fakeSys{gate: gate, started: make(chan struct{}, 16)}
	s := newTestServer(t, Options{
		Systems:    []arch.System{fake},
		MaxBatch:   1,
		MaxDelay:   time.Hour,
		QueueDepth: queueDepth,
		Policy:     policy,
	})

	samples := testSamples(t, 3+replicaWorkDepth)
	errs := make(chan error, len(samples)+8)
	lookup := func(sample trace.Sample) {
		_, err := s.Lookup(context.Background(), sample)
		errs <- err
	}

	// First request: occupies the worker (blocked in Run on the gate).
	go lookup(samples[0])
	<-fake.started

	// Next replicaWorkDepth requests: fill the replica's work channel.
	for i := 0; i < replicaWorkDepth; i++ {
		go lookup(samples[1+i])
	}
	waitUntil(t, func() bool { return len(s.replicas[0].work) == replicaWorkDepth })

	// One more: the dispatcher dequeues it and blocks handing it over.
	go lookup(samples[1+replicaWorkDepth])
	waitUntil(t, func() bool {
		return len(s.in) == 0 && s.metrics.QueueWait.Snapshot().Count == int64(2+replicaWorkDepth)
	})

	return s, fake, gate, errs
}

func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 5s")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestShedPolicy: once every stage and the queue are full, admission must
// fail fast with ErrOverloaded.
func TestShedPolicy(t *testing.T) {
	s, _, gate, errs := gatedServer(t, Shed, 1)
	defer s.Close()

	samples := testSamples(t, 2)
	// Fill the queue's single slot (dispatcher is blocked, so it stays).
	go func() {
		_, err := s.Lookup(context.Background(), samples[0])
		errs <- err
	}()
	waitUntil(t, func() bool { return len(s.in) == 1 })

	// The next request has nowhere to go: shed, synchronously.
	if _, err := s.Lookup(context.Background(), samples[1]); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if got := s.Metrics().Shed.Load(); got != 1 {
		t.Errorf("shed counter = %d, want 1", got)
	}

	close(gate)
	for i := 0; i < 3+replicaWorkDepth; i++ {
		if err := <-errs; err != nil {
			t.Errorf("admitted request %d failed: %v", i, err)
		}
	}
}

// TestBlockPolicy: with the queue full, admission must wait for space
// instead of shedding, and a canceled context must abort the wait.
func TestBlockPolicy(t *testing.T) {
	s, _, gate, errs := gatedServer(t, Block, 1)
	defer s.Close()

	samples := testSamples(t, 2)
	go func() {
		_, err := s.Lookup(context.Background(), samples[0])
		errs <- err
	}()
	waitUntil(t, func() bool { return len(s.in) == 1 })

	// A blocking admission: must not return while the queue is full.
	blockedDone := make(chan error, 1)
	go func() {
		_, err := s.Lookup(context.Background(), samples[1])
		blockedDone <- err
	}()
	select {
	case err := <-blockedDone:
		t.Fatalf("blocked admission returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}

	// A second blocked admission with a cancelable context: cancellation
	// must release it with ctx.Err().
	ctx, cancel := context.WithCancel(context.Background())
	canceledDone := make(chan error, 1)
	go func() {
		_, err := s.Lookup(ctx, testSamples(t, 1)[0])
		canceledDone <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	if err := <-canceledDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled admission err = %v, want context.Canceled", err)
	}

	close(gate)
	if err := <-blockedDone; err != nil {
		t.Errorf("blocked request failed after space freed: %v", err)
	}
	for i := 0; i < 3+replicaWorkDepth; i++ {
		if err := <-errs; err != nil {
			t.Errorf("admitted request %d failed: %v", i, err)
		}
	}
	if got := s.Metrics().Shed.Load(); got != 0 {
		t.Errorf("shed counter = %d under Block policy", got)
	}
}

// TestCancelWhileQueued: a request whose context dies while it waits in
// the admission queue must be dropped at dequeue time with its error, not
// simulated.
func TestCancelWhileQueued(t *testing.T) {
	s, fake, gate, errs := gatedServer(t, Block, 8)
	defer s.Close()

	ctx, cancel := context.WithCancel(context.Background())
	canceledDone := make(chan error, 1)
	go func() {
		_, err := s.Lookup(ctx, testSamples(t, 1)[0])
		canceledDone <- err
	}()
	// The dispatcher is blocked on the gated worker, so the request stays
	// queued until we cancel it.
	waitUntil(t, func() bool { return len(s.in) == 1 })
	cancel()
	if err := <-canceledDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	close(gate)
	for i := 0; i < 2+replicaWorkDepth; i++ {
		if err := <-errs; err != nil {
			t.Errorf("admitted request %d failed: %v", i, err)
		}
	}
	waitUntil(t, func() bool { return s.Metrics().Canceled.Load() == 1 })
	// The canceled sample must never have reached a replica: the other
	// requests were 1-sample batches.
	for _, sz := range fake.batchSizes() {
		if sz != 1 {
			t.Errorf("batch of %d executed; canceled request leaked into a batch", sz)
		}
	}
	if got, want := s.Metrics().Completed.Load(), int64(2+replicaWorkDepth); got != want {
		t.Errorf("completed = %d, want %d", got, want)
	}
}

// TestGracefulDrain: Close must reject new work immediately but answer
// every already-admitted request before returning.
func TestGracefulDrain(t *testing.T) {
	s, _, gate, errs := gatedServer(t, Block, 8)

	admitted := 2 + replicaWorkDepth

	closed := make(chan struct{})
	go func() {
		s.Close()
		close(closed)
	}()
	waitUntil(t, s.Draining)

	if _, err := s.Lookup(context.Background(), testSamples(t, 1)[0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-Close Lookup err = %v, want ErrClosed", err)
	}

	select {
	case <-closed:
		t.Fatal("Close returned while admitted requests still pending")
	case <-time.After(50 * time.Millisecond):
	}

	close(gate)
	<-closed
	for i := 0; i < admitted; i++ {
		if err := <-errs; err != nil {
			t.Errorf("admitted request %d not answered cleanly: %v", i, err)
		}
	}
	snap := s.Metrics().Snapshot()
	if snap.Completed != int64(admitted) {
		t.Errorf("completed = %d, want all %d admitted", snap.Completed, admitted)
	}
	if err := s.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

// TestStressBitIdentical runs >= 8 concurrent clients against a 2-replica
// pool of real (CPU baseline) systems and checks every batched result
// bit-for-bit against the functional embedding layer. Run with -race.
func TestStressBitIdentical(t *testing.T) {
	spec := testSpec()
	layer := testLayer(t)
	var systems []arch.System
	for i := 0; i < 2; i++ {
		sys, err := baseline.NewCPU(baseline.Config{Spec: spec, Ranks: 2})
		if err != nil {
			t.Fatal(err)
		}
		systems = append(systems, sys)
	}
	s := newTestServer(t, Options{
		Systems:  systems,
		Layer:    layer,
		MaxBatch: 8,
		MaxDelay: 200 * time.Microsecond,
	})

	const clients = 10
	const perClient = 20
	var issued, mismatches atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			g, err := trace.NewGenerator(spec, int64(1000+c))
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < perClient; i++ {
				sample := g.Sample()
				res, err := s.Lookup(context.Background(), sample)
				if err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
				issued.Add(1)
				want, err := layer.ReduceSample(sample)
				if err != nil {
					t.Error(err)
					return
				}
				if !reflect.DeepEqual(res.Vectors, want) {
					mismatches.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	if got := issued.Load(); got != clients*perClient {
		t.Fatalf("completed %d of %d requests", got, clients*perClient)
	}
	if m := mismatches.Load(); m != 0 {
		t.Fatalf("%d results differ from the functional layer", m)
	}
	snap := s.Metrics().Snapshot()
	if snap.Completed != clients*perClient {
		t.Errorf("metrics completed = %d, want %d", snap.Completed, clients*perClient)
	}
	if snap.Batches == 0 || snap.MeanBatch() < 1 {
		t.Errorf("batches = %d mean %f: coalescing never happened", snap.Batches, snap.MeanBatch())
	}
	batches, samples := s.ReplicaLoad()
	var totalB, totalS int64
	for i := range batches {
		totalB += batches[i]
		totalS += samples[i]
	}
	if totalB != snap.Batches || totalS != int64(clients*perClient) {
		t.Errorf("replica load %d batches/%d samples, want %d/%d",
			totalB, totalS, snap.Batches, clients*perClient)
	}
}

// TestLoadgen exercises the closed-loop generator end to end on a fake
// (fast) pool.
func TestLoadgen(t *testing.T) {
	s := newTestServer(t, Options{
		Systems:  []arch.System{&fakeSys{}, &fakeSys{}},
		MaxBatch: 8,
		MaxDelay: 100 * time.Microsecond,
	})
	defer s.Close()

	rep, err := Loadgen(s, LoadgenOptions{
		Spec:     testSpec(),
		Clients:  8,
		Duration: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 || rep.Thru <= 0 {
		t.Fatalf("no throughput: %+v", rep)
	}
	if rep.P50 <= 0 || rep.P99 < rep.P50 {
		t.Errorf("implausible percentiles p50=%v p99=%v", rep.P50, rep.P99)
	}
	if rep.String() == "" {
		t.Error("empty report")
	}
}
