// recross-serve runs the embedding-inference serving layer: a pool of
// simulated NMP replicas behind a dynamic batcher with admission control,
// fronted by HTTP.
//
// Serve mode (default):
//
//	recross-serve -arch recross -replicas 2 -addr :8080
//	curl -s localhost:8080/v1/lookup -d '{"ops":[{"table":0,"indices":[1,2,3]}]}'
//	curl -s localhost:8080/metrics
//
// SIGINT/SIGTERM drains gracefully: admission stops, every admitted
// request is answered, then the process exits.
//
// Load-generator mode runs a closed-loop benchmark in-process (no HTTP)
// and prints a throughput/latency report:
//
//	recross-serve -loadgen -clients 16 -duration 10s -replicas 4
//
// Knobs: -maxbatch/-maxdelay trade latency for throughput; -queue and
// -policy (block|shed) set the admission behaviour; -arch picks any of
// the simulated architectures (cpu, tensordimm, recnmp, trim-g, trim-b,
// recross, ...).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"recross"
	"recross/internal/serve"
)

func main() {
	archFlag := flag.String("arch", "recross", "architecture to replicate")
	veclen := flag.Int("veclen", 64, "embedding vector length (FP32 elements)")
	pooling := flag.Int("pooling", 80, "gathers per embedding operation")
	ranks := flag.Int("ranks", 2, "ranks per channel")
	channels := flag.Int("channels", 1, "memory channels per replica")
	terabyte := flag.Bool("terabyte", false, "use the Criteo-Terabyte-scale spec")
	profSamples := flag.Int("profile", 2000, "offline profiling samples")

	replicas := flag.Int("replicas", 2, "replica systems in the worker pool")
	maxBatch := flag.Int("maxbatch", 32, "dynamic batcher: flush at this many samples")
	maxDelay := flag.Duration("maxdelay", 2*time.Millisecond, "dynamic batcher: flush after this long")
	queueDepth := flag.Int("queue", 256, "admission queue depth (requests)")
	policy := flag.String("policy", "block", "overload policy: block or shed")

	addr := flag.String("addr", ":8080", "HTTP listen address")
	loadgen := flag.Bool("loadgen", false, "run the closed-loop load generator instead of serving HTTP")
	clients := flag.Int("clients", 8, "loadgen: concurrent closed-loop clients")
	duration := flag.Duration("duration", 10*time.Second, "loadgen: run length")
	seed := flag.Int64("seed", 1, "loadgen: client trace seed base")
	timeout := flag.Duration("timeout", 0, "loadgen: per-request deadline (0 = none)")
	flag.Parse()

	pol, err := serve.ParsePolicy(*policy)
	if err != nil {
		fail(err)
	}
	spec := recross.CriteoKaggle(*veclen, *pooling)
	if *terabyte {
		spec = recross.CriteoTerabyte(*veclen, *pooling)
	}
	cfg := recross.Config{
		Spec: spec, Ranks: *ranks, Channels: *channels,
		Batch: *maxBatch, ProfileSamples: *profSamples,
	}

	fmt.Fprintf(os.Stderr, "recross-serve: building %d %s replica(s) over %s (%d tables)...\n",
		*replicas, *archFlag, spec.Name, len(spec.Tables))
	t0 := time.Now()
	srv, err := recross.NewServer(recross.Arch(*archFlag), cfg, *replicas, recross.ServeOptions{
		MaxBatch:   *maxBatch,
		MaxDelay:   *maxDelay,
		QueueDepth: *queueDepth,
		Policy:     pol,
	})
	if err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "recross-serve: pool ready in %v (maxbatch %d, maxdelay %v, queue %d, policy %s)\n",
		time.Since(t0).Round(time.Millisecond), *maxBatch, *maxDelay, *queueDepth, pol)

	if *loadgen {
		runLoadgen(srv, spec, *clients, *duration, *seed, *timeout)
		return
	}
	serveHTTP(srv, *addr)
}

func runLoadgen(srv *recross.Server, spec recross.ModelSpec, clients int, duration time.Duration, seed int64, timeout time.Duration) {
	fmt.Fprintf(os.Stderr, "recross-serve: loadgen %d clients for %v...\n", clients, duration)
	rep, err := recross.Loadgen(srv, recross.LoadgenOptions{
		Spec:     spec,
		Clients:  clients,
		Duration: duration,
		Seed:     seed,
		Timeout:  timeout,
	})
	if err != nil {
		fail(err)
	}
	if err := srv.Close(); err != nil {
		fail(err)
	}
	fmt.Print(rep.String())
}

func serveHTTP(srv *recross.Server, addr string) {
	hs := &http.Server{Addr: addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "recross-serve: listening on %s\n", addr)
		errc <- hs.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		fail(err)
	case <-ctx.Done():
	}

	// Graceful drain: stop taking TCP connections, answer in-flight HTTP
	// requests, then drain the serving queue.
	fmt.Fprintln(os.Stderr, "recross-serve: draining...")
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "recross-serve: shutdown:", err)
	}
	if err := srv.Close(); err != nil {
		fail(err)
	}
	snap := srv.Metrics().Snapshot()
	fmt.Fprintf(os.Stderr, "recross-serve: drained; served %d requests in %d batches (mean %.1f samples/batch)\n",
		snap.Completed, snap.Batches, snap.MeanBatch())
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "recross-serve:", err)
	os.Exit(1)
}
