// Online training: run training steps (embedding gathers + gradient
// write-back) on ReCross, let the workload's popularity drift mid-stream,
// watch the stale placement degrade, and recover with the §4.5 dynamic
// rebalancing — re-profile, re-solve the partitioning LP, rewrite the
// mapping tables.
//
//	go run ./examples/online_training
package main

import (
	"fmt"
	"log"

	"recross"
	"recross/internal/partition"
	"recross/internal/trace"
)

func spec(phase string) recross.ModelSpec {
	// Two phases of the same service: identical table shapes, but the
	// popularity permutation (which rows are hot) differs — hot items
	// drifted.
	s := recross.ModelSpec{Name: "service-" + phase}
	for i := 0; i < 8; i++ {
		s.Tables = append(s.Tables, recross.TableSpec{
			Name: s.Name + fmt.Sprintf("-t%d", i), Rows: 400000, VecLen: 64,
			Pooling: 16, Prob: 1, Skew: 1.05 + 0.05*float64(i%4),
		})
	}
	return s
}

func main() {
	before := spec("v1")
	after := spec("v2")

	rc, err := recross.NewReCross(recross.DefaultReCrossConfig(before))
	if err != nil {
		log.Fatal(err)
	}

	step := func(phase string, workload recross.ModelSpec, seed int64) {
		gen, err := recross.NewGenerator(workload, seed)
		if err != nil {
			log.Fatal(err)
		}
		b := gen.Batch(16)
		// Table indices must address the instance's tables.
		for si := range b {
			for oi := range b[si] {
				b[si][oi].Table %= len(before.Tables)
			}
		}
		rs, err := rc.RunTraining(b)
		if err != nil {
			log.Fatal(err)
		}
		hit := float64(rs.RowHits) / float64(rs.RowHits+rs.RowMisses)
		fmt.Printf("%-28s %8d cycles  %5d writes  row-hit %4.0f%%\n",
			phase, rs.Cycles, rs.DRAM.WRs/4, 100*hit)
	}

	fmt.Println("training steps (gathers + gradient write-back):")
	step("phase 1 (placement fresh)", before, 100)
	step("phase 1 (steady state)", before, 101)

	fmt.Println("\n-- popularity drift: different rows are hot now --")
	step("phase 2 (placement stale)", after, 200)

	// §4.5 dynamic embedding scheduling: re-profile, re-partition.
	prof, err := partition.NewProfile(toInternal(after), 4242, 800)
	if err != nil {
		log.Fatal(err)
	}
	if err := rc.Rebalance(prof); err != nil {
		log.Fatal(err)
	}
	fmt.Println("-- rebalanced: mapping tables rewritten from a fresh profile --")
	step("phase 2 (placement fresh)", after, 201)
}

// toInternal converts the facade spec (an alias) for the internal API.
func toInternal(s recross.ModelSpec) trace.ModelSpec { return s }
