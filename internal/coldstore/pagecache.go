package coldstore

import (
	"sync"
	"sync/atomic"
)

// get results: the probe missed, served a (verified) row, or found the
// row's block corrupt in the frame — the caller must repair the page.
const (
	cacheMiss = iota
	cacheHit
	cacheCorrupt
)

// pageCache is a small CLOCK cache of device pages in front of the backing
// file — the host-side page buffer of the cold tier. One mutex guards the
// whole cache: probes are page-granular (a hit copies one vector out), so
// contention is far below the row-cache tier's and sharding would buy
// nothing.
//
// Integrity rides the cache at block granularity: each frame carries a
// bitmap of which of its page's checksum blocks have been verified.
// Serving a row from an unverified block first runs the store's verify
// hook over the block (under the cache lock, so the frame cannot move);
// on mismatch the frame is dropped and the caller repairs from the
// RowSource. Bits are seeded by put — the fill path has already verified
// the block it read for — so no row is ever served from bytes nothing
// has checked.
type pageCache struct {
	mu       sync.Mutex
	index    map[int64]int // page id -> frame
	pages    []int64       // frame -> page id (-1 empty)
	vals     []float32     // frame arenas, frameLen each
	ref      []bool        // CLOCK reference bits
	verified []uint64      // frame bitmaps: bit b set = block b verified
	hand     int
	frameLen int
	vwords   int // verified words per frame
	blockLen int // floats per full checksum block

	// verify checks one cached block against its stored checksum; nil
	// (checksums disabled) trusts every frame.
	verify func(page int64, block int, blockVals []float32) bool

	hits, misses, evictions atomic.Int64
	pageReads               atomic.Int64
}

func newPageCache(frames, frameLen, blocksPerPage, blockLen int, verify func(int64, int, []float32) bool) *pageCache {
	vwords := (blocksPerPage + 63) / 64
	c := &pageCache{
		index:    make(map[int64]int, frames),
		pages:    make([]int64, frames),
		vals:     make([]float32, frames*frameLen),
		ref:      make([]bool, frames),
		verified: make([]uint64, frames*vwords),
		frameLen: frameLen,
		vwords:   vwords,
		blockLen: blockLen,
		verify:   verify,
	}
	for i := range c.pages {
		c.pages[i] = -1
	}
	return c
}

func (c *pageCache) cap() int { return len(c.pages) }

// get copies vector [off, off+len(dst)) of the cached page into dst. The
// row lives in checksum block `block`; a frame block is verified on its
// first serve, so a fill that only checked the block it read for still
// never leaks unchecked bytes through later hits. A cacheCorrupt result
// drops the frame — the caller regenerates the page from its source.
func (c *pageCache) get(page int64, off int, dst []float32, block int) int {
	c.mu.Lock()
	f, ok := c.index[page]
	if !ok {
		c.mu.Unlock()
		c.misses.Add(1)
		return cacheMiss
	}
	base := f * c.frameLen
	if c.verify != nil {
		w, bit := f*c.vwords+block/64, uint64(1)<<(block%64)
		if c.verified[w]&bit == 0 {
			lo := block * c.blockLen
			hi := lo + c.blockLen
			if hi > c.frameLen {
				hi = c.frameLen
			}
			if !c.verify(page, block, c.vals[base+lo:base+hi]) {
				delete(c.index, page)
				c.pages[f] = -1
				c.ref[f] = false
				c.mu.Unlock()
				return cacheCorrupt
			}
			c.verified[w] |= bit
		}
	}
	copy(dst, c.vals[base+off:base+off+len(dst)])
	c.ref[f] = true
	c.mu.Unlock()
	c.hits.Add(1)
	return cacheHit
}

// contains probes without copying or counting (the prefetcher's check).
func (c *pageCache) contains(page int64) bool {
	c.mu.Lock()
	_, ok := c.index[page]
	c.mu.Unlock()
	return ok
}

// put installs a page's contents, evicting by CLOCK when full. block
// names the single checksum block the filler verified, or putAllVerified
// when every block is known good (repair and prefetch paths; checksums
// off). A racing double-install of the same page is harmless (the values
// are identical by construction) and keeps the first frame — the racer
// verified its own copy, so the first frame's bitmap stays authoritative
// for what it holds.
func (c *pageCache) put(page int64, vals []float32, block int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.index[page]; ok {
		return
	}
	// CLOCK sweep for a victim frame.
	var f int
	for {
		f = c.hand
		c.hand = (c.hand + 1) % len(c.pages)
		if c.pages[f] == -1 {
			break
		}
		if !c.ref[f] {
			delete(c.index, c.pages[f])
			c.evictions.Add(1)
			break
		}
		c.ref[f] = false
	}
	vb := c.verified[f*c.vwords : (f+1)*c.vwords]
	if c.verify == nil || block < 0 {
		for i := range vb {
			vb[i] = ^uint64(0)
		}
	} else {
		for i := range vb {
			vb[i] = 0
		}
		vb[block/64] = 1 << (block % 64)
	}
	c.pages[f] = page
	c.ref[f] = true
	c.index[page] = f
	copy(c.vals[f*c.frameLen:(f+1)*c.frameLen], vals)
}

// putAllVerified marks every block of an installed page verified.
const putAllVerified = -1

// reset drops every cached page (Remap invalidation).
func (c *pageCache) reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range c.pages {
		c.pages[i] = -1
		c.ref[i] = false
	}
	for i := range c.verified {
		c.verified[i] = 0
	}
	c.index = make(map[int64]int, len(c.pages))
	c.hand = 0
}

type pageCacheStats struct {
	hits, misses, evictions, reads int64
}

func (c *pageCache) stats() pageCacheStats {
	return pageCacheStats{
		hits:      c.hits.Load(),
		misses:    c.misses.Load(),
		evictions: c.evictions.Load(),
		reads:     c.pageReads.Load(),
	}
}
