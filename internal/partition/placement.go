package partition

import (
	"fmt"

	"recross/internal/nmp"
)

// Placement realises a Decision: it assigns every embedding row of every
// table a (region, slot) pair, hot rows individually (via the per-table
// mapping table of §4.3) and the cold tail by deterministic hashing into
// reserved ranges. Slots are vector slots within a region's address space;
// the architecture layer turns them into DRAM locations.
//
// Placement requires a uniform vector length across tables (true of every
// workload in the paper's evaluation); mixed-dimension embeddings would
// need a per-node allocator and are out of scope.
type Placement struct {
	regions  []Region
	vecBytes int64
	tables   []tablePlace
	// used[j] counts vector slots allocated in region j.
	used []int64
	// capSlots[j] is region j's capacity in vector slots.
	capSlots []int64
	// fillOrder lists region indices in placement-preference order for a
	// segment's fractional split: DRAM regions from the last (finest)
	// backwards, then cold regions. Hotter sub-slices take earlier entries,
	// so the cold tier always receives the coldest slice of a segment.
	fillOrder []int
}

type tablePlace struct {
	rows int64
	// rank maps an observed row index to its frequency rank (0 hottest).
	rank map[int64]int32
	// region[r] and slot[r] give the placement of observed rank r.
	region []uint8
	slot   []int64
	// cold ranges per region for the never-observed tail.
	coldBase  []int64
	coldCount []int64
	coldTotal int64
}

// Build materialises a placement for profile p under decision d.
func Build(p *Profile, d *Decision) (*Placement, error) {
	if len(p.Spec.Tables) != len(d.SegFrac) {
		return nil, fmt.Errorf("partition: decision covers %d tables, profile has %d", len(d.SegFrac), len(p.Spec.Tables))
	}
	vecLen := p.Spec.Tables[0].VecLen
	for _, t := range p.Spec.Tables {
		if t.VecLen != vecLen {
			return nil, fmt.Errorf("partition: mixed vector lengths (%d vs %d) not supported", t.VecLen, vecLen)
		}
	}
	vecBytes := int64(vecLen) * 4
	pl := &Placement{
		regions:  d.Regions,
		vecBytes: vecBytes,
		tables:   make([]tablePlace, len(p.Spec.Tables)),
		used:     make([]int64, len(d.Regions)),
		capSlots: make([]int64, len(d.Regions)),
	}
	for j, r := range d.Regions {
		// A compressed region stores its vectors encoded, so it holds
		// compression× more logical vector slots than CapBytes/vecBytes.
		pl.capSlots[j] = int64(float64(r.CapBytes) * r.compression() / float64(vecBytes))
	}
	for j := len(d.Regions) - 1; j >= 0; j-- {
		if d.Regions[j].Level != nmp.LevelCold {
			pl.fillOrder = append(pl.fillOrder, j)
		}
	}
	for j := range d.Regions {
		if d.Regions[j].Level == nmp.LevelCold {
			pl.fillOrder = append(pl.fillOrder, j)
		}
	}

	// Pass 1: observed (hot) rows, hottest region first within a segment.
	for i := range p.Spec.Tables {
		tp := &pl.tables[i]
		tp.rows = p.Spec.Tables[i].Rows
		hot := p.Hists[i].HotKeys(p.Hists[i].Distinct())
		tp.rank = make(map[int64]int32, len(hot))
		tp.region = make([]uint8, len(hot))
		tp.slot = make([]int64, len(hot))
		segs := p.segmentsOf(i)
		for r, row := range hot {
			tp.rank[row] = int32(r)
			frac := float64(r) / float64(tp.rows)
			j := pl.regionFor(d.SegFrac[i], segs, frac)
			j = pl.spill(j)
			tp.region[r] = uint8(j)
			tp.slot[r] = pl.used[j]
			pl.used[j]++
		}
	}

	// Pass 2: reserve cold ranges per table per region.
	for i := range p.Spec.Tables {
		tp := &pl.tables[i]
		nCold := tp.rows - int64(len(tp.rank))
		tp.coldBase = make([]int64, len(d.Regions))
		tp.coldCount = make([]int64, len(d.Regions))
		tp.coldTotal = nCold
		if nCold == 0 {
			continue
		}
		// Distribute the cold tail by the decision's row fractions, net of
		// rows already placed hot.
		counts := make([]int64, len(d.Regions))
		placedHot := make([]int64, len(d.Regions))
		for _, j := range tp.region {
			placedHot[j]++
		}
		var assigned int64
		for j := range d.Regions {
			want := int64(d.RowFrac[i][j]*float64(tp.rows)) - placedHot[j]
			if want < 0 {
				want = 0
			}
			counts[j] = want
			assigned += want
		}
		// Put any rounding remainder in the roomiest region.
		if rem := nCold - assigned; rem > 0 {
			best := 0
			for j := range d.Regions {
				if pl.capSlots[j]-pl.used[j]-counts[j] > pl.capSlots[best]-pl.used[best]-counts[best] {
					best = j
				}
			}
			counts[best] += rem
		} else if rem < 0 {
			// Trim the rounding excess from the first region able to
			// absorb it.
			for j := range counts {
				if counts[j] >= -rem {
					counts[j] += rem
					break
				}
			}
		}
		// Reconcile with remaining capacity: clamp each region to its free
		// slots and spill the overflow across whatever space is left —
		// tight fits (e.g. 1 KB vectors filling 97 % of the channel) must
		// still place.
		var overflow int64
		for j := range counts {
			avail := pl.capSlots[j] - pl.used[j]
			if counts[j] > avail {
				overflow += counts[j] - avail
				counts[j] = avail
			}
		}
		for j := range counts {
			if overflow == 0 {
				break
			}
			avail := pl.capSlots[j] - pl.used[j] - counts[j]
			if avail <= 0 {
				continue
			}
			take := overflow
			if take > avail {
				take = avail
			}
			counts[j] += take
			overflow -= take
		}
		if overflow > 0 {
			return nil, fmt.Errorf("partition: table %d cold tail (%d rows) does not fit", i, overflow)
		}
		for j, n := range counts {
			if n == 0 {
				continue
			}
			tp.coldBase[j] = pl.used[j]
			tp.coldCount[j] = n
			pl.used[j] += n
		}
	}
	return pl, nil
}

// regionFor picks the region of a row at row-fraction frac, walking the
// segment's fractional split in fillOrder — DRAM regions from the
// highest-parallelism (last) down, cold regions after all of them — so
// hotter sub-slices land lower in the tree and the cold tier gets only a
// segment's coldest slice.
func (pl *Placement) regionFor(segFrac [][]float64, segs []segment, frac float64) int {
	for s, sg := range segs {
		if frac >= sg.hiFrac && s != len(segs)-1 {
			continue
		}
		// Position within the segment in [0,1).
		pos := 0.0
		if sg.hiFrac > sg.loFrac {
			pos = (frac - sg.loFrac) / (sg.hiFrac - sg.loFrac)
		}
		if pos < 0 {
			pos = 0
		}
		if pos >= 1 {
			pos = 0.999999
		}
		cum := 0.0
		for _, j := range pl.fillOrder {
			cum += segFrac[s][j]
			if pos < cum {
				return j
			}
		}
		return pl.fillOrder[len(pl.fillOrder)-1]
	}
	return 0
}

// spill returns j if it has room, otherwise the roomiest region.
func (pl *Placement) spill(j int) int {
	if pl.used[j] < pl.capSlots[j] {
		return j
	}
	return pl.roomiest()
}

func (pl *Placement) roomiest() int {
	best := 0
	for j := range pl.used {
		if pl.capSlots[j]-pl.used[j] > pl.capSlots[best]-pl.used[best] {
			best = j
		}
	}
	return best
}

// Locate returns the (region, vector slot) of a row. Hot rows resolve via
// the mapping table; cold rows hash into their table's reserved ranges
// (collisions there alias physical slots, which is harmless for rows that
// are essentially never accessed).
func (pl *Placement) Locate(table int, row int64) (region int, slot int64) {
	tp := &pl.tables[table]
	if r, ok := tp.rank[row]; ok {
		return int(tp.region[r]), tp.slot[r]
	}
	// Cold row: deterministic hash across the reserved ranges.
	h := hash64(uint64(row)*0x9E3779B97F4A7C15 + uint64(table) + 1)
	var total int64
	for _, n := range tp.coldCount {
		total += n
	}
	if total == 0 {
		// Degenerate: everything was observed; reuse the coldest slot.
		return int(tp.region[len(tp.region)-1]), tp.slot[len(tp.slot)-1]
	}
	pick := int64(h % uint64(total))
	for j, n := range tp.coldCount {
		if pick < n {
			return j, tp.coldBase[j] + pick
		}
		pick -= n
	}
	panic("partition: unreachable cold pick")
}

// Regions returns the placement's regions.
func (pl *Placement) Regions() []Region { return pl.regions }

// VecBytes returns the uniform vector size in bytes.
func (pl *Placement) VecBytes() int64 { return pl.vecBytes }

// UsedSlots returns the allocated vector slots per region.
func (pl *Placement) UsedSlots() []int64 {
	out := make([]int64, len(pl.used))
	copy(out, pl.used)
	return out
}

// MappingBits returns the size of the index-to-address mapping tables in
// bits: 34 bits per embedding row (§5.6).
func (pl *Placement) MappingBits() int64 {
	var rows int64
	for i := range pl.tables {
		rows += pl.tables[i].rows
	}
	return rows * 34
}

// ColdRegions reports, per region index, whether the region is cold-tier
// (Level == nmp.LevelCold).
func (pl *Placement) ColdRegions() []bool {
	out := make([]bool, len(pl.regions))
	for j, r := range pl.regions {
		out[j] = r.Level == nmp.LevelCold
	}
	return out
}

// DiffCold counts ranked rows that cross the DRAM/cold boundary between
// two placements of the same model: promoted (cold in old, DRAM in next)
// and demoted (DRAM in old, cold in next). Row-fraction deltas cannot see
// these moves — a hot-set permutation leaves every RowFrac untouched while
// swapping whole row populations across the boundary — so the adaptive
// controller diffs the placements directly. Rows ranked in neither
// placement (the never-observed tail, hash-placed into reserved ranges)
// are not counted; by construction they carry no measured traffic.
func DiffCold(old, next *Placement) (promoted, demoted int64) {
	if old == nil || next == nil || len(old.tables) != len(next.tables) {
		return 0, 0
	}
	oldCold := old.ColdRegions()
	nextCold := next.ColdRegions()
	isCold := func(cold []bool, region int) bool {
		return region >= 0 && region < len(cold) && cold[region]
	}
	for ti := range old.tables {
		if old.tables[ti].rows != next.tables[ti].rows {
			continue
		}
		count := func(row int64) {
			or, _ := old.Locate(ti, row)
			nr, _ := next.Locate(ti, row)
			wasCold, isNow := isCold(oldCold, or), isCold(nextCold, nr)
			switch {
			case wasCold && !isNow:
				promoted++
			case !wasCold && isNow:
				demoted++
			}
		}
		for row := range old.tables[ti].rank {
			count(row)
		}
		for row := range next.tables[ti].rank {
			if _, ok := old.tables[ti].rank[row]; !ok {
				count(row)
			}
		}
	}
	return promoted, demoted
}

func hash64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	x *= 0xC4CEB9FE1A85EC53
	x ^= x >> 33
	return x
}
