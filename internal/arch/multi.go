package arch

import (
	"fmt"
	"sync"

	"recross/internal/trace"
)

// MultiChannel shards an embedding model across several independent memory
// channels — the standard production deployment (each channel has its own
// controller, DIMM, and in the NMP designs its own PEs). Tables are
// distributed round-robin; each channel runs its own System instance over
// its sub-model, channels execute concurrently, and a batch finishes when
// the slowest channel does.
type MultiChannel struct {
	name     string
	spec     trace.ModelSpec
	systems  []System
	shardOf  []int // table -> channel
	tableIdx []int // table -> index within its channel's sub-spec

	// Run scratch, reused across batches under the single-goroutine
	// System contract (each persistent channel worker touches only its
	// own sub-System and result slot).
	shards  []trace.Batch
	results []*RunStats
	errs    []error

	// Persistent per-channel workers, started lazily on the first Run so
	// a constructed-but-never-run MultiChannel spawns nothing. Each
	// worker owns its channel's System for the instance's lifetime,
	// preserving the single-goroutine contract; Run hands workers 1..n-1
	// their shards (channel 0 runs on the caller) and waits on wg, so
	// batches never pay a goroutine spawn.
	work   []chan trace.Batch
	wg     sync.WaitGroup
	closed bool
}

// NewMultiChannel builds `channels` instances via the build callback, each
// over its round-robin shard of spec's tables.
func NewMultiChannel(spec trace.ModelSpec, channels int, build func(sub trace.ModelSpec) (System, error)) (*MultiChannel, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if channels <= 0 {
		return nil, fmt.Errorf("arch: channel count must be positive, got %d", channels)
	}
	if channels > len(spec.Tables) {
		return nil, fmt.Errorf("arch: %d channels for %d tables", channels, len(spec.Tables))
	}
	m := &MultiChannel{
		spec:     spec,
		shardOf:  make([]int, len(spec.Tables)),
		tableIdx: make([]int, len(spec.Tables)),
	}
	subs := make([]trace.ModelSpec, channels)
	for c := range subs {
		subs[c].Name = fmt.Sprintf("%s/ch%d", spec.Name, c)
	}
	for i, t := range spec.Tables {
		c := i % channels
		m.shardOf[i] = c
		m.tableIdx[i] = len(subs[c].Tables)
		// Keep the table's own name so its popularity permutation (seeded
		// from model+table identity) matches single-channel runs.
		subs[c].Tables = append(subs[c].Tables, t)
	}
	for c := range subs {
		sys, err := build(subs[c])
		if err != nil {
			return nil, fmt.Errorf("arch: channel %d: %w", c, err)
		}
		m.systems = append(m.systems, sys)
		if c == 0 {
			m.name = sys.Name() + "-multichannel"
		}
	}
	return m, nil
}

// Channels returns the channel count.
func (m *MultiChannel) Channels() int { return len(m.systems) }

// Name implements System.
func (m *MultiChannel) Name() string { return m.name }

// Run implements System: the batch's ops are routed to their tables'
// channels (with table indices remapped into each sub-spec), the channels
// run concurrently, and the stats merge with Cycles = slowest channel.
func (m *MultiChannel) Run(b trace.Batch) (*RunStats, error) {
	if m.closed {
		return nil, fmt.Errorf("arch: MultiChannel closed")
	}
	if m.shards == nil {
		m.shards = make([]trace.Batch, len(m.systems))
		m.results = make([]*RunStats, len(m.systems))
		m.errs = make([]error, len(m.systems))
	}
	shards := m.shards
	for c := range shards {
		if cap(shards[c]) < len(b) {
			grown := make(trace.Batch, len(b))
			copy(grown, shards[c])
			shards[c] = grown
		}
		shards[c] = shards[c][:len(b)]
		for si := range shards[c] {
			shards[c][si] = shards[c][si][:0]
		}
	}
	for si, s := range b {
		for _, op := range s {
			if op.Table < 0 || op.Table >= len(m.shardOf) {
				return nil, fmt.Errorf("arch: op table %d out of range", op.Table)
			}
			c := m.shardOf[op.Table]
			local := op
			local.Table = m.tableIdx[op.Table]
			shards[c][si] = append(shards[c][si], local)
		}
	}

	m.dispatch(shards)
	for c, err := range m.errs {
		if err != nil {
			return nil, fmt.Errorf("arch: channel %d: %w", c, err)
		}
	}
	results := m.results

	out := &RunStats{Imbalance: 1}
	var loads []int64
	for _, rs := range results {
		if rs.Cycles > out.Cycles {
			out.Cycles = rs.Cycles
		}
		out.DRAM.ACTs += rs.DRAM.ACTs
		out.DRAM.PREs += rs.DRAM.PREs
		out.DRAM.RDs += rs.DRAM.RDs
		out.DRAM.WRs += rs.DRAM.WRs
		out.DRAM.BurstsToHost += rs.DRAM.BurstsToHost
		out.DRAM.BurstsToRank += rs.DRAM.BurstsToRank
		out.DRAM.BurstsToBG += rs.DRAM.BurstsToBG
		out.DRAM.BurstsToBank += rs.DRAM.BurstsToBank
		out.DRAM.HostResultTx += rs.DRAM.HostResultTx
		out.DRAM.SubarraySwitch += rs.DRAM.SubarraySwitch
		out.Ops.Add(rs.Ops)
		out.RowHits += rs.RowHits
		out.RowMisses += rs.RowMisses
		out.Lookups += rs.Lookups
		out.CacheHits += rs.CacheHits
		out.Energy.ACT += rs.Energy.ACT
		out.Energy.RD += rs.Energy.RD
		out.Energy.IO += rs.Energy.IO
		out.Energy.PE += rs.Energy.PE
		out.Energy.Static += rs.Energy.Static
		out.Energy.Cache += rs.Energy.Cache
		loads = append(loads, rs.NodeLoads...)
	}
	out.NodeLoads = loads
	if len(loads) > 0 {
		out.Imbalance = LoadsToImbalance(loads)
	}
	return out, nil
}

// dispatch fans the pre-routed shards out to the channels and waits for
// the slowest: shards 1..n-1 go to the persistent workers, shard 0 runs
// on the calling goroutine (which would only park otherwise — and a
// single-channel instance then dispatches with no handoff at all).
// Results and errors land in m.results / m.errs.
func (m *MultiChannel) dispatch(shards []trace.Batch) {
	m.ensureWorkers()
	m.wg.Add(len(m.systems) - 1)
	for c := 1; c < len(m.systems); c++ {
		m.work[c] <- shards[c]
	}
	m.results[0], m.errs[0] = m.systems[0].Run(shards[0])
	m.wg.Wait()
}

// ensureWorkers lazily starts one persistent worker per channel. Run is
// single-goroutine (the System contract), so no lock guards the start.
func (m *MultiChannel) ensureWorkers() {
	if m.work != nil {
		return
	}
	// Channel 0 has no worker — dispatch runs it on the caller.
	m.work = make([]chan trace.Batch, len(m.systems))
	for c := 1; c < len(m.systems); c++ {
		ch := make(chan trace.Batch, 1)
		m.work[c] = ch
		go func(c int, ch chan trace.Batch) {
			for b := range ch {
				m.results[c], m.errs[c] = m.systems[c].Run(b)
				m.wg.Done()
			}
		}(c, ch)
	}
}

// Close shuts the persistent channel workers down. Idempotent; Run after
// Close errors. A MultiChannel that is never closed keeps len(systems)
// idle goroutines parked on their work channels until process exit —
// harmless for a server's lifetime, but callers that build many
// short-lived instances (sweeps, tests) should Close them.
func (m *MultiChannel) Close() error {
	if m.closed {
		return nil
	}
	m.closed = true
	for _, ch := range m.work {
		if ch != nil {
			close(ch)
		}
	}
	m.work = nil
	return nil
}
