package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"recross/internal/arch"
	"recross/internal/baseline"
	"recross/internal/trace"
)

func newHTTPServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := newTestServer(t, Options{
		Systems:  []arch.System{&fakeSys{}},
		MaxBatch: 4,
		MaxDelay: 200 * time.Microsecond,
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postLookup(t *testing.T, ts *httptest.Server, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/lookup", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestHTTPLookup(t *testing.T) {
	s, ts := newHTTPServer(t)
	defer s.Close()

	req := LookupRequest{Ops: []OpRequest{{
		Table:   0,
		Indices: []int64{1, 2, 3},
		Weights: []float32{0.5, 0.25, 1.5},
	}}}
	resp, body := postLookup(t, ts, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var lr LookupResponse
	if err := json.Unmarshal(body, &lr); err != nil {
		t.Fatal(err)
	}
	want, err := s.opts.Layer.Reduce(trace.Op{
		Table: 0, Kind: trace.WeightedSum,
		Indices: []int64{1, 2, 3}, Weights: []float32{0.5, 0.25, 1.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(lr.Vectors) != 1 || !reflect.DeepEqual(lr.Vectors[0], want) {
		t.Fatalf("vectors = %v, want %v", lr.Vectors, want)
	}
	if lr.BatchSize < 1 || lr.ServiceCycles <= 0 {
		t.Errorf("implausible response: %+v", lr)
	}
}

func TestHTTPLookupDefaultsAndKinds(t *testing.T) {
	s, ts := newHTTPServer(t)
	defer s.Close()

	// Omitted weights default to all-ones; "sum" and "max" need none.
	for _, kind := range []string{"", "sum", "max"} {
		resp, body := postLookup(t, ts, LookupRequest{Ops: []OpRequest{{
			Table: 1, Kind: kind, Indices: []int64{5, 7},
		}}})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("kind %q: status %d: %s", kind, resp.StatusCode, body)
		}
	}
}

// TestHTTPRealSystemKinds runs weightless sum/max ops through a REAL
// system, not fakeSys: real systems dedup ops (arch.DedupOp), which
// indexes Weights for every index and panics the replica goroutine —
// taking the whole server down — if the parser admits a sample with
// missing weights. Regression test for exactly that crash.
func TestHTTPRealSystemKinds(t *testing.T) {
	spec := testSpec()
	sys, err := baseline.NewCPU(baseline.Config{Spec: spec, Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Options{
		Systems:  []arch.System{sys},
		MaxBatch: 4,
		MaxDelay: 200 * time.Microsecond,
	})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, kind := range []string{"", "sum", "max"} {
		resp, body := postLookup(t, ts, LookupRequest{Ops: []OpRequest{{
			Table: 0, Kind: kind, Indices: []int64{1, 2, 2, 3},
		}}})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("kind %q: status %d: %s", kind, resp.StatusCode, body)
		}
		var lr LookupResponse
		if err := json.Unmarshal(body, &lr); err != nil {
			t.Fatal(err)
		}
		k, _ := parseKind(kind)
		want, err := s.opts.Layer.Reduce(trace.Op{
			Table: 0, Kind: k,
			Indices: []int64{1, 2, 2, 3}, Weights: []float32{1, 1, 1, 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(lr.Vectors) != 1 || !reflect.DeepEqual(lr.Vectors[0], want) {
			t.Fatalf("kind %q: vectors = %v, want %v", kind, lr.Vectors, want)
		}
	}
}

func TestHTTPLookupValidation(t *testing.T) {
	s, ts := newHTTPServer(t)
	defer s.Close()

	for name, body := range map[string]LookupRequest{
		"no ops":          {},
		"bad table":       {Ops: []OpRequest{{Table: 99, Indices: []int64{1}}}},
		"no indices":      {Ops: []OpRequest{{Table: 0}}},
		"bad index":       {Ops: []OpRequest{{Table: 0, Indices: []int64{1 << 40}}}},
		"bad kind":        {Ops: []OpRequest{{Table: 0, Kind: "median", Indices: []int64{1}}}},
		"weight mismatch": {Ops: []OpRequest{{Table: 0, Indices: []int64{1, 2}, Weights: []float32{1}}}},
	} {
		resp, _ := postLookup(t, ts, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
}

func TestHTTPMetricsAndHealth(t *testing.T) {
	s, ts := newHTTPServer(t)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	postLookup(t, ts, LookupRequest{Ops: []OpRequest{{Table: 0, Indices: []int64{1}}}})
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if !bytes.Contains(buf.Bytes(), []byte("recross_requests_admitted_total 1")) {
		t.Errorf("metrics missing admitted counter:\n%s", buf.String())
	}

	// Draining flips healthz to 503 and lookups to ErrClosed.
	s.Close()
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining healthz = %d, want 503", resp.StatusCode)
	}
	resp, _ = postLookup(t, ts, LookupRequest{Ops: []OpRequest{{Table: 0, Indices: []int64{1}}}})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("closed lookup = %d, want 503", resp.StatusCode)
	}
}
