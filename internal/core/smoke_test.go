package core

import (
	"testing"

	"recross/internal/arch"
	"recross/internal/baseline"
	"recross/internal/trace"
)

// testSpec is a scaled-down skewed workload that drains in milliseconds.
func testSpec() trace.ModelSpec {
	spec := trace.ModelSpec{Name: "smoke"}
	for i := 0; i < 8; i++ {
		spec.Tables = append(spec.Tables, trace.TableSpec{
			Name: trace.CriteoKaggle(64, 40).Tables[i].Name, Rows: 400000,
			VecLen: 64, Pooling: 40, Prob: 1,
			Skew: 0.9 + 0.05*float64(i%6),
		})
	}
	return spec
}

// TestSmokeOrdering runs every architecture on the same batch and logs the
// cycle counts; used to calibrate the integration thresholds.
func TestSmokeOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke comparison in short mode")
	}
	spec := testSpec()
	cfg := baseline.Config{Spec: spec, Ranks: 2}
	g, err := trace.NewGenerator(spec, 777)
	if err != nil {
		t.Fatal(err)
	}
	b := g.Batch(16)

	systems := map[string]arch.System{}
	if s, err := baseline.NewCPU(cfg); err != nil {
		t.Fatal(err)
	} else {
		systems["cpu"] = s
	}
	if s, err := baseline.NewTensorDIMM(cfg); err != nil {
		t.Fatal(err)
	} else {
		systems["tensordimm"] = s
	}
	if s, err := baseline.NewRecNMP(cfg); err != nil {
		t.Fatal(err)
	} else {
		systems["recnmp"] = s
	}
	if s, err := baseline.NewTRiMG(cfg); err != nil {
		t.Fatal(err)
	} else {
		systems["trim-g"] = s
	}
	prof, err := trace.NewGenerator(spec, 12345)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prof.Profile(2000); err != nil {
		t.Fatal(err)
	}
	if s, err := baseline.NewTRiMB(cfg, prof.Histograms()); err != nil {
		t.Fatal(err)
	} else {
		systems["trim-b"] = s
	}
	rcfg := DefaultConfig(spec)
	rcfg.Batch = 16
	if s, err := New(rcfg); err != nil {
		t.Fatal(err)
	} else {
		systems["recross"] = s
	}

	cycles := map[string]float64{}
	for name, s := range systems {
		rs, err := s.Run(b)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		cycles[name] = float64(rs.Cycles)
		t.Logf("%-11s cycles=%9d hits=%6d misses=%6d imbalance=%5.2f energy=%.3gJ",
			name, rs.Cycles, rs.RowHits, rs.RowMisses, rs.Imbalance, rs.Energy.Total())
	}
	for name := range systems {
		t.Logf("speedup over cpu: %-11s %.2fx", name, cycles["cpu"]/cycles[name])
	}
}
