// recross-sim runs one architecture over one workload and reports latency,
// row-buffer behaviour, load balance, and the energy account.
//
// Usage:
//
//	recross-sim -arch recross [-veclen 64 -pooling 80 -batch 32 -ranks 2]
//	recross-sim -arch all            # compare every architecture
//	recross-sim -config run.json     # load all parameters from a file
//	recross-sim -json                # machine-readable results on stdout
//
// Architectures: cpu, tensordimm, recnmp, rank-nmp, fafnir, trim-g,
// trim-b, recross, all.
//
// A -config file holds the flag values as JSON, e.g.
//
//	{"arch": "recross", "veclen": 64, "pooling": 80,
//	 "batch": 32, "ranks": 2, "channels": 2, "seed": 777}
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"recross"
)

// fileConfig mirrors the command-line flags for -config files.
type fileConfig struct {
	Arch     string `json:"arch"`
	VecLen   int    `json:"veclen"`
	Pooling  int    `json:"pooling"`
	Batch    int    `json:"batch"`
	Ranks    int    `json:"ranks"`
	Channels int    `json:"channels"`
	Seed     int64  `json:"seed"`
	Profile  int    `json:"profile"`
	Terabyte bool   `json:"terabyte"`
}

// jsonResult is the machine-readable output record of one run.
type jsonResult struct {
	Arch       string  `json:"arch"`
	Cycles     int64   `json:"cycles"`
	Micros     float64 `json:"us"`
	Lookups    int64   `json:"lookups"`
	RowHits    int64   `json:"row_hits"`
	RowMisses  int64   `json:"row_misses"`
	CacheHits  int64   `json:"cache_hits"`
	Imbalance  float64 `json:"imbalance"`
	OpP50      int64   `json:"op_p50_cycles"`
	OpP99      int64   `json:"op_p99_cycles"`
	EnergyMJ   float64 `json:"energy_mj"`
	ACTs       int64   `json:"acts"`
	RDs        int64   `json:"rds"`
	WRs        int64   `json:"wrs"`
	ResultTxns int64   `json:"result_bursts"`
}

func main() {
	archFlag := flag.String("arch", "all", "architecture to simulate (or 'all')")
	veclen := flag.Int("veclen", 64, "embedding vector length (FP32 elements)")
	pooling := flag.Int("pooling", 80, "gathers per embedding operation")
	batch := flag.Int("batch", 32, "batch size")
	ranks := flag.Int("ranks", 2, "ranks per channel")
	channels := flag.Int("channels", 1, "independent memory channels")
	seed := flag.Int64("seed", 777, "trace seed")
	profSamples := flag.Int("profile", 2000, "offline profiling samples")
	terabyte := flag.Bool("terabyte", false, "use the Criteo-Terabyte-scale spec")
	configPath := flag.String("config", "", "load parameters from a JSON file")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON results")
	flag.Parse()

	if *configPath != "" {
		data, err := os.ReadFile(*configPath)
		if err != nil {
			fail(err)
		}
		fc := fileConfig{
			Arch: *archFlag, VecLen: *veclen, Pooling: *pooling,
			Batch: *batch, Ranks: *ranks, Channels: *channels,
			Seed: *seed, Profile: *profSamples, Terabyte: *terabyte,
		}
		if err := json.Unmarshal(data, &fc); err != nil {
			fail(fmt.Errorf("config %s: %w", *configPath, err))
		}
		*archFlag, *veclen, *pooling = fc.Arch, fc.VecLen, fc.Pooling
		*batch, *ranks, *channels = fc.Batch, fc.Ranks, fc.Channels
		*seed, *profSamples, *terabyte = fc.Seed, fc.Profile, fc.Terabyte
	}

	spec := recross.CriteoKaggle(*veclen, *pooling)
	if *terabyte {
		spec = recross.CriteoTerabyte(*veclen, *pooling)
	}
	if !*jsonOut {
		fmt.Printf("workload %s: %d tables, %.1f GB; channel capacity %.1f GB\n",
			spec.Name, len(spec.Tables), gb(spec.TotalBytes()), gb(recross.ChannelBytes(*ranks)))
	}

	var arches []recross.Arch
	if *archFlag == "all" {
		arches = recross.Arches()
	} else {
		arches = []recross.Arch{recross.Arch(*archFlag)}
	}

	profile, err := recross.NewProfile(spec, 12345, *profSamples)
	if err != nil {
		fail(err)
	}
	cfg := recross.Config{
		Spec: spec, Ranks: *ranks, Batch: *batch, Channels: *channels,
		ProfileSamples: *profSamples, Profile: profile,
	}
	if *channels > 1 {
		cfg.Profile = nil // per-channel profiling
	}
	gen, err := recross.NewGenerator(spec, *seed)
	if err != nil {
		fail(err)
	}
	b := gen.Batch(*batch)
	if !*jsonOut {
		fmt.Printf("batch: %d samples, %d lookups\n\n", len(b), b.Lookups())
	}

	var results []jsonResult
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	if !*jsonOut {
		fmt.Fprintln(w, "arch\tcycles\tus\thit-rate\timbalance\tenergy-mJ\tACTs\tRDs")
	}
	for _, a := range arches {
		sys, err := recross.NewSystem(a, cfg)
		if err != nil {
			fail(fmt.Errorf("%s: %w", a, err))
		}
		st, err := sys.Run(b)
		if err != nil {
			fail(fmt.Errorf("%s: %w", a, err))
		}
		hit := float64(st.RowHits) / float64(st.RowHits+st.RowMisses)
		if *jsonOut {
			results = append(results, jsonResult{
				Arch: sys.Name(), Cycles: int64(st.Cycles),
				Micros:  float64(st.Cycles) / 2.4 / 1e3,
				Lookups: st.Lookups, RowHits: st.RowHits,
				RowMisses: st.RowMisses, CacheHits: st.CacheHits,
				Imbalance: st.Imbalance,
				OpP50:     int64(st.OpP50), OpP99: int64(st.OpP99),
				EnergyMJ: st.Energy.Total() * 1e3,
				ACTs:     st.DRAM.ACTs, RDs: st.DRAM.RDs, WRs: st.DRAM.WRs,
				ResultTxns: st.DRAM.HostResultTx,
			})
			continue
		}
		fmt.Fprintf(w, "%s\t%d\t%.2f\t%.2f\t%.2f\t%.4f\t%d\t%d\n",
			sys.Name(), st.Cycles, float64(st.Cycles)/2.4/1e3,
			hit, st.Imbalance, st.Energy.Total()*1e3, st.DRAM.ACTs, st.DRAM.RDs)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fail(err)
		}
		return
	}
	w.Flush()
}

func gb(b int64) float64 { return float64(b) / (1 << 30) }

func fail(err error) {
	fmt.Fprintln(os.Stderr, "recross-sim:", err)
	os.Exit(1)
}
