// Package recross is a simulation library for near-memory-processing (NMP)
// acceleration of the embedding layers of deep-learning recommendation
// models, reproducing "Accelerating Personalized Recommendation with
// Cross-level Near-Memory Processing" (Liu et al., ISCA 2023).
//
// The library models a DDR5 memory channel at DRAM-command granularity and
// provides six architectures over it:
//
//   - CPU        — the conventional 16-core + 32 MB LLC baseline
//   - TensorDIMM — rank-level NMP with vertical vector partitioning
//   - RecNMP     — rank-level NMP with per-PE hot-entry caches
//   - TRiMG      — bank-group-level NMP
//   - TRiMB      — bank-level NMP with hot-entry replication
//   - ReCross    — the paper's cross-level NMP: rank, bank-group and
//     subarray-parallel bank-level regions fed by an LP-based
//     bandwidth-aware partitioner
//
// Quick start:
//
//	spec := recross.CriteoKaggle(64, 80)
//	sys, err := recross.NewSystem(recross.ReCross, recross.Config{Spec: spec})
//	gen, err := recross.NewGenerator(spec, 1)
//	stats, err := sys.Run(gen.Batch(32))
//	fmt.Println(stats.Cycles, stats.Energy.Total())
//
// The experiment harness reproducing every figure and table of the paper's
// evaluation is exposed through the recross-bench command; see DESIGN.md
// for the experiment index and EXPERIMENTS.md for paper-vs-measured
// results.
package recross

import (
	"context"
	"fmt"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"recross/internal/adapt"
	"recross/internal/arch"
	"recross/internal/baseline"
	"recross/internal/chaos"
	"recross/internal/cluster"
	"recross/internal/coldstore"
	"recross/internal/core"
	"recross/internal/dram"
	"recross/internal/embedding"
	"recross/internal/energy"
	"recross/internal/kernels"
	"recross/internal/partition"
	"recross/internal/serve"
	"recross/internal/trace"
)

// Re-exported workload types.
type (
	// ModelSpec describes one recommendation model's embedding layer.
	ModelSpec = trace.ModelSpec
	// TableSpec describes one embedding table.
	TableSpec = trace.TableSpec
	// Batch is a batch of inference samples' embedding work.
	Batch = trace.Batch
	// Op is one embedding operation (gather + weighted-sum reduction).
	Op = trace.Op
	// Sample is one inference sample's embedding work (one Op per
	// accessed table) — the unit the serving layer's Lookup accepts.
	Sample = trace.Sample
	// Generator produces deterministic synthetic traces.
	Generator = trace.Generator
	// RunStats reports one simulated batch execution.
	RunStats = arch.RunStats
	// System is one simulated architecture.
	//
	// Concurrency contract: a System is single-goroutine. Run mutates
	// internal simulator state (banks, controller queues, caches), so a
	// single instance must never see concurrent Run calls; serialization
	// is the caller's job. Independent System instances are fully
	// isolated — even when built over the same ModelSpec and sharing one
	// *Profile (which construction only reads) — so scaling out means
	// one instance per goroutine, exactly what the serving layer's
	// replica pool does (see Server and Config.ReplicaSystems).
	System = arch.System
	// EnergyBreakdown decomposes a run's energy.
	EnergyBreakdown = energy.Breakdown
	// Layer is the functional embedding layer (ground truth).
	Layer = embedding.Layer
	// ReCrossSystem is the paper's architecture with its partitioning
	// internals exposed (placement, decision, regions).
	ReCrossSystem = core.ReCross
	// ReCrossConfig is the full ReCross configuration (PE population and
	// optimization toggles).
	ReCrossConfig = core.Config
	// Profile carries the offline access statistics the partitioners use.
	Profile = partition.Profile
	// Precision selects an embedding row storage format: FP32 (native),
	// FP16 (IEEE binary16) or INT8 (per-row affine quantization with an
	// 8-byte scale/zero-point header).
	Precision = kernels.Precision

	// ColdStore is the flash-backed cold tier's functional store: a
	// file/mmap-backed, page-granular embedding store with frequency-based
	// row->page mapping, a CLOCK page cache and an async prefetcher.
	ColdStore = coldstore.Store
	// ColdStoreStats is the store's counter snapshot (page hits/misses,
	// device reads, populations, evictions, prefetches, remaps).
	ColdStoreStats = coldstore.Stats
	// ColdModel is the cold device's latency/bandwidth timing model in
	// DRAM cycles (zero fields take NVMe-flash-like defaults).
	ColdModel = coldstore.Model
	// ColdRowCount is one row's sketch-derived access count, the input of
	// the frequency-based page mapping.
	ColdRowCount = coldstore.RowCount
	// ColdDevice is the cold store's page I/O seam; wrap it (via
	// ColdTierConfig.WrapDevice) to interpose fault injection or
	// alternative media.
	ColdDevice = coldstore.Device

	// ColdFaultConfig configures storage-tier fault injection (rates,
	// stall, schedule, seed) for FaultyColdDevice.
	ColdFaultConfig = chaos.ColdConfig
	// ColdFaultRates are the per-operation storage fault probabilities.
	ColdFaultRates = chaos.ColdRates
	// ColdFaultRule scripts one exact storage fault.
	ColdFaultRule = chaos.ColdRule
	// FaultyColdDevice is the deterministic fault-injecting cold device
	// wrapper (read errors, stalls, corrupt pages, torn writes, sticky
	// device failure).
	FaultyColdDevice = chaos.FaultyColdStore

	// Server is the embedding-inference serving front-end: dynamic
	// batching over a sharded, self-healing replica pool with admission
	// control and a metrics registry. Build one with NewServer (or
	// serve.New directly via ServeOptions).
	Server = serve.Server
	// ServeOptions configures the serving layer (batching, queueing,
	// overload policy, replica systems, retry/restart/quorum knobs).
	ServeOptions = serve.Options
	// ServeResult is one answered lookup.
	ServeResult = serve.Result
	// ServeMetrics is the serving layer's live metrics registry.
	ServeMetrics = serve.Metrics
	// ServeSnapshot is a point-in-time metrics capture with p50/p95/p99.
	ServeSnapshot = serve.Snapshot
	// OverloadPolicy selects Block or Shed admission behaviour.
	OverloadPolicy = serve.OverloadPolicy
	// LoadgenOptions configures the built-in closed-loop load generator.
	LoadgenOptions = serve.LoadgenOptions
	// LoadgenReport is the load generator's throughput/latency summary.
	LoadgenReport = serve.Report
	// HealthReport is the server-wide health snapshot behind /healthz:
	// per-replica states, available count, quorum, degraded/draining.
	HealthReport = serve.HealthReport
	// ReplicaHealth is one replica's state/failure/restart snapshot.
	ReplicaHealth = serve.ReplicaHealth
	// ReplicaError is the typed replica-fault error; it unwraps to
	// ErrReplicaFailure.
	ReplicaError = serve.ReplicaError

	// SystemUpdate is a staged replica-System transformation, applied by
	// each worker at a batch boundary (see Server.StageUpdate).
	SystemUpdate = serve.SystemUpdate

	// AdaptController is the online workload profiler + adaptive
	// repartitioning loop: a streaming frequency sketch over the serving
	// path, a drift detector against the deployed placement's profile, a
	// replanner re-running the partitioner LP, and a hysteresis gate
	// pricing migrations before adopting them. Build one (wired into a
	// Server) with NewAdaptiveServer.
	AdaptController = adapt.Controller
	// AdaptOptions configures the adaptive loop (sketch size, control
	// interval, drift threshold, hysteresis windows, migration economics).
	AdaptOptions = adapt.Options
	// AdaptMetrics is the control loop's counter/gauge snapshot.
	AdaptMetrics = adapt.Metrics
	// AdaptStepResult reports one control window (drift, plan, adoption).
	AdaptStepResult = adapt.StepResult
	// DriftDetector compares live traffic against a placement's profile.
	DriftDetector = adapt.Detector
	// MigrationPlan prices a proposed repartitioning (bytes moved,
	// bandwidth-cycles, predicted speedup).
	MigrationPlan = adapt.Plan
	// FreqTracker is the bounded-memory per-table frequency sketch.
	FreqTracker = adapt.Tracker

	// FaultConfig configures the chaos fault-injection harness: per-kind
	// rates, a stall duration, a deterministic per-replica schedule, and
	// the RNG seed.
	FaultConfig = chaos.Config
	// FaultRates are per-batch injection probabilities (latency, panic,
	// wedge, corrupt).
	FaultRates = chaos.Rates
	// FaultRule scripts one exact fault ("replica 2 panics on batch 5").
	FaultRule = chaos.Rule
	// FaultKind enumerates the injectable fault kinds.
	FaultKind = chaos.Kind
	// FaultInjector is the shared control plane of a fault campaign:
	// enable/disable, per-kind counters, wedge release.
	FaultInjector = chaos.Injector
	// FaultySystem wraps any System with deterministic fault injection.
	FaultySystem = chaos.FaultySystem

	// ClusterNode is the cluster transport driver interface
	// (Lookup/Health/Stats/Close) — implemented in-process, by a
	// goroutine fleet, and by HTTP peers.
	ClusterNode = cluster.Node
	// ClusterRouter is the stateless scatter-gather front of a cluster:
	// placement-driven batch splitting, per-node deadlines, hedged
	// requests, least-outstanding replica dispatch, functional fallback.
	ClusterRouter = cluster.Router
	// ClusterRouterOptions configures a router built directly over nodes.
	ClusterRouterOptions = cluster.Options
	// ClusterFleet is N serve.Servers in one binary, each a ClusterNode,
	// with Kill/Restart lifecycle control.
	ClusterFleet = cluster.Fleet
	// ClusterPlacement maps tables to owning nodes (primary first).
	ClusterPlacement = cluster.Placement
	// ClusterPlacementOptions configures ring/cost placement builds.
	ClusterPlacementOptions = cluster.PlacementOptions
	// ClusterResult is one answered cluster lookup.
	ClusterResult = cluster.Result
	// ClusterHealth is the aggregated /healthz report of a cluster.
	ClusterHealth = cluster.Health
	// ClusterStats is the router's counter snapshot.
	ClusterStats = cluster.Stats
	// ClusterReport is the cluster load generator's summary.
	ClusterReport = cluster.Report
	// HTTPNode is the real-network transport driver (a /v1/lookup peer).
	HTTPNode = cluster.HTTPNode
	// LocalNode is the in-process transport driver (wraps a Server).
	LocalNode = cluster.LocalNode
	// BinNode is the binary-protocol transport driver: multiplexed
	// lookups over pooled long-lived conns to a peer's binary listener.
	BinNode = cluster.BinNode
	// BinNodeOptions tunes a BinNode (pool size, wire precision, dialer).
	BinNodeOptions = cluster.BinNodeOptions
	// BinServer is the binary-protocol listener (server half of BinNode).
	BinServer = cluster.BinServer
	// BinServerOptions configures a binary listener.
	BinServerOptions = cluster.BinServerOptions
	// BinDial dials one binary transport connection (the chaos seam).
	BinDial = cluster.BinDial
	// ClusterWireMetrics are one wire endpoint's transport counters.
	ClusterWireMetrics = cluster.WireMetrics

	// NodeFaultConfig configures cluster-tier fault injection (kill,
	// partition, slow, plus conn-level binary-wire faults) for
	// FaultyNode and WrapFaultyBinDial.
	NodeFaultConfig = chaos.NodeConfig
	// NodeFaultRates are per-Lookup node fault probabilities.
	NodeFaultRates = chaos.NodeRates
	// ConnFaultRates are per-frame-write binary-wire fault probabilities.
	ConnFaultRates = chaos.ConnRates
	// NodeFaultRule scripts one exact node fault.
	NodeFaultRule = chaos.NodeRule
	// FaultyNode is the deterministic fault-injecting ClusterNode wrapper.
	FaultyNode = cluster.FaultyNode
)

// The injectable fault kinds.
const (
	FaultLatency = chaos.Latency
	FaultPanic   = chaos.Panic
	FaultWedge   = chaos.Wedge
	FaultCorrupt = chaos.Corrupt

	// Storage-tier fault kinds (FaultyColdDevice).
	FaultColdReadErr     = chaos.ReadErr
	FaultColdStall       = chaos.Stall
	FaultColdCorruptPage = chaos.CorruptPage
	FaultColdTornWrite   = chaos.TornWrite

	// Cluster-tier fault kinds (FaultyNode).
	FaultNodeKill      = chaos.NodeKill
	FaultNodePartition = chaos.NodePartition
	FaultNodeSlow      = chaos.NodeSlow

	// Connection-tier fault kinds (WrapFaultyBinDial, binary wire only).
	FaultConnTorn  = chaos.ConnTorn
	FaultConnReset = chaos.ConnReset
	FaultConnStall = chaos.ConnStall
)

// Serving layer overload policies and errors, re-exported.
var (
	// ErrOverloaded is returned by Server.Lookup when the admission
	// queue is full under the Shed policy.
	ErrOverloaded = serve.ErrOverloaded
	// ErrServerClosed is returned once a Server is draining or closed.
	ErrServerClosed = serve.ErrClosed
	// ErrReplicaFailure identifies replica-level faults
	// (errors.Is(err, ErrReplicaFailure)); callers normally never see
	// one, since failed batches retry and then degrade.
	ErrReplicaFailure = serve.ErrReplicaFailure
)

// Admission overload policies.
const (
	// BlockOnOverload waits for queue space.
	BlockOnOverload = serve.Block
	// ShedOnOverload fails fast with ErrOverloaded.
	ShedOnOverload = serve.Shed
)

// Row storage precisions (Config.Precision, ColdTierConfig.Precision).
const (
	FP32 = kernels.FP32
	FP16 = kernels.FP16
	INT8 = kernels.INT8
)

// ParsePrecision parses "fp32", "fp16" or "int8".
func ParsePrecision(s string) (Precision, error) { return kernels.ParsePrecision(s) }

// CriteoKaggle returns the 26-table Criteo Kaggle workload spec.
func CriteoKaggle(vecLen, pooling int) ModelSpec {
	return trace.CriteoKaggle(vecLen, pooling)
}

// CriteoTerabyte returns the scaled-up Criteo Terabyte workload spec.
func CriteoTerabyte(vecLen, pooling int) ModelSpec {
	return trace.CriteoTerabyte(vecLen, pooling)
}

// NewGenerator builds a deterministic trace generator for spec.
func NewGenerator(spec ModelSpec, seed int64) (*Generator, error) {
	return trace.NewGenerator(spec, seed)
}

// NewLayer builds the functional embedding layer for spec (procedural,
// zero-memory tables).
func NewLayer(spec ModelSpec) (*Layer, error) {
	return embedding.NewLayer(spec)
}

// AlmostEqual reports whether two vectors agree within tol elementwise
// (tol 0 demands bit-identical results).
func AlmostEqual(a, b []float32, tol float64) bool {
	return embedding.AlmostEqual(a, b, tol)
}

// Arch selects an architecture.
type Arch string

// The evaluated architectures.
const (
	CPU        Arch = "cpu"
	TensorDIMM Arch = "tensordimm"
	RecNMP     Arch = "recnmp"
	TRiMG      Arch = "trim-g"
	TRiMB      Arch = "trim-b"
	ReCross    Arch = "recross"

	// Extras beyond the paper's comparison set.

	// RankNMP is cache-less rank-level NMP (the generic "rank level" of
	// Figs. 4-5).
	RankNMP Arch = "rank-nmp"
	// FAFNIR adds an in-buffer rank reduction tree (Asgari et al.,
	// HPCA'21; the paper's §6).
	FAFNIR Arch = "fafnir"
)

// Arches lists every architecture in the paper's comparison order.
func Arches() []Arch {
	return []Arch{CPU, TensorDIMM, RecNMP, TRiMG, TRiMB, ReCross}
}

// Config configures NewSystem. Zero values take the paper's defaults
// (2 ranks, batch 32 for the partitioner, 2000 profiling samples).
type Config struct {
	// Spec is the workload (required).
	Spec ModelSpec
	// Ranks per channel (default 2).
	Ranks int
	// Channels shards the model's tables round-robin across this many
	// independent memory channels, each with its own controller and PEs
	// (default 1). Profiling runs per channel when Channels > 1.
	Channels int
	// Batch is the batch size ReCross's partitioner optimizes for
	// (default 32).
	Batch int
	// ProfileSamples is the offline profiling length used by ReCross and
	// TRiM-B's hot-entry selection (default 2000).
	ProfileSamples int
	// ProfileSeed seeds the profiling pass. A zero ProfileSeed means
	// "use the default 12345" unless ProfileSeedSet is true; to profile
	// with the literal seed 0, set ProfileSeedSet.
	ProfileSeed int64
	// ProfileSeedSet marks ProfileSeed as intentional, making seed 0
	// usable. Without it a zero ProfileSeed is indistinguishable from an
	// unset field and takes the default.
	ProfileSeedSet bool
	// Profile, when non-nil, is reused instead of profiling afresh.
	Profile *Profile
	// Cold, when non-nil, enables the flash-backed cold tier: a fourth
	// placement level below the DRAM regions, priced by the cold device's
	// timing model in the partitioner LP. ReCross only — NewSystem wires
	// the timing side into every replica, and NewServer/NewAdaptiveServer
	// additionally open the functional backing store and route cold-placed
	// row reads through it.
	Cold *ColdTierConfig
	// Precision is the DRAM tiers' embedding row storage format (default
	// FP32). Quantized layers hold encoded backing tables that the reduce
	// path dequantizes inline (the hot-row cache stays fp32), and the
	// ReCross timing model charges the encoded burst count per gather
	// while the partitioner sees compressed region capacity/bandwidth.
	// ReCross only on the timing side; the functional layer quantizes for
	// every architecture.
	Precision Precision
}

// ColdTierConfig configures the flash-backed cold tier (Config.Cold): the
// capacity and timing model the partitioner prices the fourth placement
// level with, the DRAM-residency budget that forces the tail of an
// oversized table set onto flash, and the functional backing store's
// layout knobs.
type ColdTierConfig struct {
	// CapBytes is the cold region's capacity offered to the partitioner
	// (required; size it to hold whatever the DRAM budget displaces).
	CapBytes int64
	// ResidentBudgetBytes, when positive, clamps the summed DRAM region
	// capacity to this budget — regions shrink proportionally — so table
	// sets larger than DRAM spill their cold mass onto flash instead of
	// failing to fit.
	ResidentBudgetBytes int64
	// PageBytes is the device page size (default 16 KiB).
	PageBytes int
	// InStorageReduce enables RecSSD-style device-side pooling: one
	// partial sum per op crosses the host link instead of every gathered
	// row, raising the effective link bandwidth the LP prices cold
	// placements with.
	InStorageReduce bool
	// Model overrides the cold device timing model (zero fields take
	// NVMe-flash-like defaults).
	Model ColdModel
	// Dir is the backing file's directory (default os.TempDir()); the file
	// is created on server construction and removed on Server.Close.
	Dir string
	// Precision is the cold tier's page row format (default FP32,
	// independent of Config.Precision). Quantized pages pack more rows per
	// device read — the effective page-read bandwidth the partitioner
	// prices cold placements with rises by the codec ratio — and served
	// rows are the canonical decoded values.
	Precision Precision
	// CacheBytes is the host-side page-cache budget (default 64 pages).
	CacheBytes int64
	// Mmap maps the backing file instead of using pread.
	Mmap bool
	// Prefetch is the async prefetch queue depth (default 64).
	Prefetch int

	// DisableChecksum turns off per-page CRC32C verification and repair
	// (the benchmark baseline; keep it on in production).
	DisableChecksum bool
	// Retries bounds device read retries per page read (default 2;
	// negative disables).
	Retries int
	// RetryBackoff is the initial retry backoff, doubling per attempt
	// (default 100µs).
	RetryBackoff time.Duration
	// ReadDeadline bounds one device page read; 0 disables (default).
	ReadDeadline time.Duration
	// BreakerThreshold consecutive failed device reads open the cold
	// tier's circuit breaker (default 4); while it is open, cold rows
	// materialize through the direct slow path and the server reports
	// cold-degraded health.
	BreakerThreshold int
	// BreakerCooldown is the breaker's open->half-open delay (default
	// 50ms); BreakerProbes successful probes then close it (default 2).
	BreakerCooldown time.Duration
	BreakerProbes   int
	// ScrubInterval is the background integrity scrubber's cadence (one
	// resident page verified per interval; 0 disables).
	ScrubInterval time.Duration
	// WrapDevice, when set, interposes on the store's page I/O — the
	// storage fault-injection seam (chaos campaigns wrap here).
	WrapDevice func(ColdDevice) ColdDevice
}

// tierSpec converts the facade config into the core/timing-side spec.
func (c *ColdTierConfig) tierSpec() *coldstore.TierSpec {
	return &coldstore.TierSpec{
		CapBytes:            c.CapBytes,
		ResidentBudgetBytes: c.ResidentBudgetBytes,
		PageBytes:           c.PageBytes,
		InStorageReduce:     c.InStorageReduce,
		Model:               c.Model,
	}
}

func (c Config) withDefaults() Config {
	if c.Ranks == 0 {
		c.Ranks = 2
	}
	if c.Batch == 0 {
		c.Batch = 32
	}
	if c.ProfileSamples == 0 {
		c.ProfileSamples = 2000
	}
	if c.ProfileSeed == 0 && !c.ProfileSeedSet {
		c.ProfileSeed = 12345
	}
	return c
}

// NewSystem builds the requested architecture over the workload.
func NewSystem(a Arch, cfg Config) (System, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Spec.Validate(); err != nil {
		return nil, err
	}
	if cfg.Cold != nil && a != ReCross {
		return nil, fmt.Errorf("recross: the cold tier requires the %q architecture (it owns the partitioner), got %q", ReCross, a)
	}
	if cfg.Channels > 1 {
		spec := cfg.Spec
		n := cfg.Channels
		return arch.NewMultiChannel(spec, n, func(sub ModelSpec) (System, error) {
			sc := cfg
			sc.Spec = sub
			sc.Channels = 1
			sc.Profile = nil // the sub-model needs its own profile
			return NewSystem(a, sc)
		})
	}
	bcfg := baseline.Config{Spec: cfg.Spec, Ranks: cfg.Ranks}
	switch a {
	case CPU:
		return baseline.NewCPU(bcfg)
	case TensorDIMM:
		return baseline.NewTensorDIMM(bcfg)
	case RecNMP:
		return baseline.NewRecNMP(bcfg)
	case RankNMP:
		return baseline.NewRankNMP(bcfg)
	case FAFNIR:
		return baseline.NewFAFNIR(bcfg)
	case TRiMG:
		return baseline.NewTRiMG(bcfg)
	case TRiMB:
		prof, err := profileOf(cfg)
		if err != nil {
			return nil, err
		}
		return baseline.NewTRiMB(bcfg, prof.Hists)
	case ReCross:
		rcfg := core.DefaultConfig(cfg.Spec)
		rcfg.Ranks = cfg.Ranks
		rcfg.Batch = cfg.Batch
		rcfg.ProfileSamples = cfg.ProfileSamples
		rcfg.Seed = cfg.ProfileSeed
		rcfg.Profile = cfg.Profile
		rcfg.Precision = cfg.Precision
		if cfg.Cold != nil {
			rcfg.ColdTier = cfg.Cold.tierSpec()
			rcfg.ColdPrecision = cfg.Cold.Precision
		}
		return core.New(rcfg)
	default:
		return nil, fmt.Errorf("recross: unknown architecture %q", a)
	}
}

// ReplicaSystems builds n isolated System replicas of architecture a
// over the same workload — the Config-level hook the serving layer's
// worker pool is built from. The offline profile is computed once and
// shared read-only across replicas, so startup does not re-profile n
// times; each returned System is otherwise fully independent and safe to
// drive from its own goroutine (see the System concurrency contract).
func (c Config) ReplicaSystems(a Arch, n int) ([]System, error) {
	if n < 1 {
		return nil, fmt.Errorf("recross: replica count %d < 1", n)
	}
	c, err := c.profiled(a)
	if err != nil {
		return nil, err
	}
	systems := make([]System, n)
	for i := range systems {
		sys, err := NewSystem(a, c)
		if err != nil {
			return nil, fmt.Errorf("recross: replica %d: %w", i, err)
		}
		systems[i] = sys
	}
	return systems, nil
}

// profiled applies defaults and runs the offline profiling pass once up
// front for the architectures that need one, so replica construction —
// initial or a supervisor rebuild — reuses the shared read-only profile
// instead of re-profiling. Skipped for multi-channel configs, which
// re-profile per channel shard.
func (c Config) profiled(a Arch) (Config, error) {
	c = c.withDefaults()
	if c.Profile == nil && c.Channels <= 1 && (a == TRiMB || a == ReCross) {
		if err := c.Spec.Validate(); err != nil {
			return c, err
		}
		prof, err := NewProfile(c.Spec, c.ProfileSeed, c.ProfileSamples)
		if err != nil {
			return c, err
		}
		c.Profile = prof
	}
	return c, nil
}

// newLayer builds the functional layer at the config's storage precision.
// Quantization happens here, before the serving layer attaches a hot-row
// cache (SetPrecision rejects later changes), so warm and cold paths agree
// on the canonical decoded values from the first lookup.
func (c Config) newLayer() (*Layer, error) {
	layer, err := NewLayer(c.Spec)
	if err != nil {
		return nil, err
	}
	if c.Precision != FP32 {
		if err := layer.SetPrecision(c.Precision); err != nil {
			return nil, err
		}
	}
	return layer, nil
}

// coldReader adapts the store to the embedding layer's ColdReader.
type coldReader struct{ s *coldstore.Store }

func (r coldReader) ReadColdRow(ti int, idx int64, dst []float32) bool {
	return r.s.ReadRow(ti, idx, dst)
}

// openColdStore builds the functional backing store over the layer's
// tables (the store lazily materializes their exact bits into pages, so
// every read path stays bit-identical to the procedural reference).
func openColdStore(cold *ColdTierConfig, layer *Layer) (*coldstore.Store, error) {
	dir := cold.Dir
	if dir == "" {
		dir = os.TempDir()
	}
	// The store reads full-precision sources: its codec (cold.Precision)
	// must apply exactly once to fp32 rows. When the tier precisions
	// match, the cold path therefore serves the same canonical decoded
	// bits as the warm quantized tables; when they differ, cold-placed
	// rows carry the cold codec's representation.
	srcs := make([]coldstore.RowSource, layer.Tables())
	for i := range srcs {
		srcs[i] = layer.SourceTable(i)
	}
	return coldstore.Open(coldstore.Config{
		Dir:              dir,
		Precision:        cold.Precision,
		PageBytes:        cold.PageBytes,
		CacheBytes:       cold.CacheBytes,
		Prefetch:         cold.Prefetch,
		Mmap:             cold.Mmap,
		DisableChecksum:  cold.DisableChecksum,
		Retries:          cold.Retries,
		RetryBackoff:     cold.RetryBackoff,
		ReadDeadline:     cold.ReadDeadline,
		BreakerThreshold: cold.BreakerThreshold,
		BreakerCooldown:  cold.BreakerCooldown,
		BreakerProbes:    cold.BreakerProbes,
		ScrubInterval:    cold.ScrubInterval,
		WrapDevice:       cold.WrapDevice,
	}, srcs)
}

// routeCold points the layer's cold route at the store for every row the
// placement holds in the cold region. Swapping is atomic, so adoption can
// re-route a live data plane.
func routeCold(layer *Layer, store *coldstore.Store, pl *partition.Placement) {
	layer.SetColdRoute(func(ti int, idx int64) bool {
		region, _ := pl.Locate(ti, idx)
		return region == core.RegionCold
	}, coldReader{store})
}

// coldCounts converts the tracker's per-table heavy-hitter snapshots into
// the store's Remap input, keeping only rows the new placement holds cold
// — the warm-but-cold-placed rows frequency-based packing exists for. A
// table with no counted cold rows keeps its current mapping.
func coldCounts(tr *FreqTracker, pl *partition.Placement, tables int) [][]ColdRowCount {
	snaps := tr.Snapshot()
	counts := make([][]ColdRowCount, tables)
	for ti := range counts {
		if ti >= len(snaps) {
			break
		}
		snap := snaps[ti]
		var cs []ColdRowCount
		for k, row := range snap.Keys {
			if region, _ := pl.Locate(ti, row); region == core.RegionCold {
				cs = append(cs, ColdRowCount{Row: row, Count: snap.Counts[k]})
			}
		}
		counts[ti] = cs
	}
	return counts
}

// NewServer builds the embedding-inference serving front-end: n replica
// systems of architecture a over cfg (profiled once, via
// Config.ReplicaSystems), the functional embedding layer for result
// vectors, and the dynamic batcher / admission control configured by
// opts (opts.Systems and opts.Layer are filled in here). Unless the
// caller supplies one, opts.Rebuild is wired to rebuild a failed replica
// from the same architecture and shared profile, so the self-healing
// supervisor restores full pool capacity without re-profiling.
//
// With Config.Cold set, the flash-backed cold tier's functional store is
// opened over the layer's tables, cold-placed row reads route through it
// (behind the hot-row cache), its recross_coldstore_* series ride
// /metrics, and Server.Close releases its backing file.
func NewServer(a Arch, cfg Config, n int, opts ServeOptions) (*Server, error) {
	cfg, err := cfg.profiled(a)
	if err != nil {
		return nil, err
	}
	systems, err := cfg.ReplicaSystems(a, n)
	if err != nil {
		return nil, err
	}
	layer, err := cfg.newLayer()
	if err != nil {
		return nil, err
	}
	var store *coldstore.Store
	if cfg.Cold != nil {
		rc, ok := systems[0].(*core.ReCross)
		if !ok {
			return nil, fmt.Errorf("recross: %q replicas do not expose a cold placement", a)
		}
		store, err = openColdStore(cfg.Cold, layer)
		if err != nil {
			return nil, err
		}
		routeCold(layer, store, rc.Placement())
		if opts.ColdDegraded == nil {
			opts.ColdDegraded = store.Degraded
		}
		prev := opts.OnClose
		opts.OnClose = func() {
			store.Close()
			if prev != nil {
				prev()
			}
		}
	}
	opts.Systems = systems
	opts.Layer = layer
	if opts.Rebuild == nil {
		rebuildCfg := cfg
		opts.Rebuild = func(int) (System, error) { return NewSystem(a, rebuildCfg) }
	}
	srv, err := serve.New(opts)
	if err != nil {
		if store != nil {
			store.Close()
		}
		return nil, err
	}
	if store != nil {
		srv.RegisterExpo(store.Expo)
	}
	return srv, nil
}

// NewAdaptiveServer builds a serving front-end with the online adaptive
// repartitioning loop wired through it: every admitted sample feeds the
// controller's frequency sketches (ServeOptions.Observer), adoption
// stages a non-blocking placement swap on every replica
// (Server.StageUpdate, applied at batch boundaries), supervisor-rebuilt
// replicas come up already on the adopted placement, and the controller's
// recross_adapt_* series ride the server's /metrics endpoint.
//
// Only the ReCross architecture has a partitioner to adapt; other arches
// are rejected. The returned controller is not started: call Start for
// the background loop at AdaptOptions.Interval, or drive Step yourself
// (deterministic tests do). Close the server first, then Stop the
// controller.
func NewAdaptiveServer(a Arch, cfg Config, n int, sopts ServeOptions, aopts AdaptOptions) (*Server, *AdaptController, error) {
	if a != ReCross {
		return nil, nil, fmt.Errorf("recross: adaptive serving requires the %q architecture (it owns the partitioner), got %q", ReCross, a)
	}
	cfg, err := cfg.profiled(a)
	if err != nil {
		return nil, nil, err
	}
	systems, err := cfg.ReplicaSystems(a, n)
	if err != nil {
		return nil, nil, err
	}
	layer, err := cfg.newLayer()
	if err != nil {
		return nil, nil, err
	}
	rc, ok := systems[0].(*core.ReCross)
	if !ok {
		return nil, nil, fmt.Errorf("recross: %q replicas do not expose partitioning internals", a)
	}
	origDec := rc.Decision()

	var store *coldstore.Store
	if cfg.Cold != nil {
		store, err = openColdStore(cfg.Cold, layer)
		if err != nil {
			return nil, nil, err
		}
		routeCold(layer, store, rc.Placement())
		if sopts.ColdDegraded == nil {
			sopts.ColdDegraded = store.Degraded
		}
		if aopts.ColdHealthy == nil {
			// The demotion-pause gate: no DRAM->cold migrations while the
			// store's breaker is not closed.
			aopts.ColdHealthy = func() bool { return !store.Degraded() }
		}
		prev := sopts.OnClose
		sopts.OnClose = func() {
			store.Close()
			if prev != nil {
				prev()
			}
		}
	}

	// The controller and server reference each other (Observer feeds the
	// controller; adoption stages updates on the server), so the adoption
	// closure captures the server and controller variables filled in below.
	var srv *Server
	var ctrl *AdaptController
	aopts.Spec = cfg.Spec
	aopts.Baseline = rc.Profile()
	aopts.Decision = origDec
	if aopts.Batch == 0 {
		aopts.Batch = cfg.Batch
	}
	if aopts.Adopt == nil {
		aopts.Adopt = func(prof *Profile, dec *partition.Decision) error {
			if srv == nil {
				return fmt.Errorf("recross: adoption before server construction")
			}
			srv.StageUpdate(func(id int, sys System) (System, error) {
				rb, ok := sys.(adapt.Rebalancer)
				if !ok {
					return sys, nil // non-partitioned replica: nothing to swap
				}
				if err := rb.Adopt(prof, dec); err != nil {
					return nil, err
				}
				return sys, nil
			})
			return nil
		}
	}
	if store != nil {
		// Adoption also moves the cold boundary: re-route the data plane's
		// cold predicate to the adopted placement and repack the store's
		// pages from the sketch counts (RecFlash-style frequency mapping) —
		// promoted rows stop routing to flash, demoted ones start, and the
		// warm cold-placed rows pack hottest-first.
		inner := aopts.Adopt
		aopts.Adopt = func(prof *Profile, dec *partition.Decision) error {
			if err := inner(prof, dec); err != nil {
				return err
			}
			pl, err := partition.Build(prof, dec)
			if err != nil {
				return err
			}
			routeCold(layer, store, pl)
			if ctrl != nil {
				return store.Remap(coldCounts(ctrl.Tracker(), pl, layer.Tables()))
			}
			return nil
		}
	}
	if aopts.ServiceCycles == nil {
		aopts.ServiceCycles = func() (int64, float64) {
			if srv == nil {
				return 0, 0
			}
			h := srv.Metrics().ServiceCycles.Snapshot()
			return h.Count, h.Mean * float64(h.Count)
		}
	}
	ctrl, err = adapt.NewController(aopts)
	if err != nil {
		if store != nil {
			store.Close()
		}
		return nil, nil, err
	}

	sopts.Systems = systems
	sopts.Layer = layer
	if sopts.Observer == nil {
		sopts.Observer = ctrl.Observe
	}
	if sopts.Rebuild == nil {
		rebuildCfg := cfg
		sopts.Rebuild = func(id int) (System, error) {
			sys, err := NewSystem(a, rebuildCfg)
			if err != nil {
				return nil, err
			}
			// A replacement replica must not resurrect the boot placement
			// after an adoption: bring it up on the controller's current
			// state.
			prof, dec := ctrl.Current()
			if dec != origDec {
				if rb, ok := sys.(adapt.Rebalancer); ok {
					if err := rb.Adopt(prof, dec); err != nil {
						return nil, err
					}
				}
			}
			return sys, nil
		}
	}
	srv, err = serve.New(sopts)
	if err != nil {
		if store != nil {
			store.Close()
		}
		return nil, nil, err
	}
	srv.RegisterExpo(ctrl.Expo)
	if store != nil {
		srv.RegisterExpo(store.Expo)
	}
	// The controller's Space-Saving sketches double as the hot-row cache's
	// admission filter: once live traffic accumulates, only rows the
	// tracker ranks as heavy hitters earn cache slots, so a cold scan
	// cannot wash the resident hot set out (lookups still always probe).
	if rc := srv.RowCache(); rc != nil {
		rc.SetAdmit(ctrl.Tracker().Hot)
	}
	return srv, ctrl, nil
}

// NewFaultInjector returns an enabled injector — share one across the
// fault wrappers of a campaign so counters and the on/off switch span
// every tier (replica batches, device pages, cluster nodes).
func NewFaultInjector() *FaultInjector { return chaos.NewInjector() }

// WrapFaulty wraps one System with deterministic fault injection for
// replica id; inj may be shared across a fleet (nil makes a fresh one).
func WrapFaulty(sys System, fc FaultConfig, id int, inj *FaultInjector) *FaultySystem {
	return chaos.Wrap(sys, fc, id, inj)
}

// WrapColdDevice wraps a cold-store page device with the deterministic
// storage-fault injector — the storage-tier counterpart of WrapFaulty.
// Install it through ColdTierConfig.WrapDevice and keep the returned
// handle to script sticky outages (FailDevice/RestoreDevice); inj may be
// shared with a replica fleet so one campaign spans compute and storage
// faults (nil makes a fresh one).
func WrapColdDevice(inner ColdDevice, fc ColdFaultConfig, inj *FaultInjector) *FaultyColdDevice {
	return chaos.WrapColdDevice(inner, fc, inj)
}

// NewChaosServer builds a serving front-end whose replicas are wrapped
// with the fault-injection harness — the soak-test entry point behind
// recross-serve's -chaos flags. Every replica shares one injector
// (returned for enabling/disabling injection and releasing wedges), and
// the supervisor's rebuild path wraps replacements too, so injection
// continues across restarts until the injector is disabled.
func NewChaosServer(a Arch, cfg Config, n int, opts ServeOptions, fc FaultConfig) (*Server, *FaultInjector, error) {
	cfg, err := cfg.profiled(a)
	if err != nil {
		return nil, nil, err
	}
	systems, err := cfg.ReplicaSystems(a, n)
	if err != nil {
		return nil, nil, err
	}
	layer, err := cfg.newLayer()
	if err != nil {
		return nil, nil, err
	}
	wrapped, inj := chaos.WrapFleet(systems, fc)
	opts.Systems = wrapped
	opts.Layer = layer
	if opts.Rebuild == nil {
		rebuildCfg := cfg
		var gen atomic.Int64
		opts.Rebuild = func(id int) (System, error) {
			sys, err := NewSystem(a, rebuildCfg)
			if err != nil {
				return nil, err
			}
			// A rebuilt replica must not replay its predecessor's fault
			// sequence: with the same seed, a wrapper whose RNG faults on
			// its first batch faults on the first batch of every
			// incarnation, burning the restart cap until the replica is
			// declared dead and the fleet decays into all-degraded
			// service. Offset the seed per rebuild (still deterministic)
			// and drop scripted rules, which are one-shot and already
			// fired on the original incarnation.
			rfc := fc
			rfc.Schedule = nil
			rfc.Seed = fc.Seed + int64(n)*gen.Add(1)
			return chaos.Wrap(sys, rfc, id, inj), nil
		}
	}
	srv, err := serve.New(opts)
	if err != nil {
		return nil, nil, err
	}
	return srv, inj, nil
}

// Loadgen drives a Server with closed-loop clients and reports
// throughput and latency percentiles.
func Loadgen(s *Server, opts LoadgenOptions) (*LoadgenReport, error) {
	return serve.Loadgen(s, opts)
}

// ClusterConfig configures NewClusterServer: cluster shape (goroutine
// fleet or HTTP peers), placement policy, hot-table replication, and
// router timing knobs. Zero values take sensible defaults.
type ClusterConfig struct {
	// Nodes is the goroutine-fleet size (default 4). Ignored when Peers
	// is set.
	Nodes int
	// Peers, when non-empty, switches to the real-network transport:
	// one node per peer address instead of an in-binary fleet. The
	// transport per peer follows Wire: "http://host:port" speaks JSON
	// over HTTP (a plain `recross-serve -addr` process),
	// "bin://host:port" or a bare "host:port" speaks the binary
	// protocol (a `recross-serve -bin-addr` listener).
	Peers []string
	// Wire selects the peer transport: "auto" (default; by address
	// scheme), "json" (HTTP for every peer) or "binary".
	Wire string
	// WireConns is each BinNode's connection-pool size (default 2).
	WireConns int
	// WirePrecision compresses binary-wire response vectors: "fp32"
	// (default; raw bits, bit-identical), "fp16" or "int8" (the storage
	// codecs' single rounding, opt-in and non-canonical).
	WirePrecision string
	// WrapDial, when set, interposes on every binary-transport dial —
	// the conn-level fault-injection seam (wrap with WrapFaultyBinDial
	// for chaos campaigns). nil means plain TCP.
	WrapDial func(i int, d BinDial) BinDial
	// ReplicasPerNode is each fleet node's serve-pool size (default 1).
	ReplicasPerNode int

	// Placement selects the partitioning mode: "ring" (default;
	// consistent hashing with weighted vnodes, stable under node loss)
	// or "cost" (LPT descent over per-table access volumes, priced
	// against the fractional LP optimum).
	Placement string
	// Replication is the replica count for hot tables (default 2).
	Replication int
	// HotTopK replicates the k largest-volume tables (default
	// max(1, tables/4); negative replicates none).
	HotTopK int
	// VNodes is the ring's virtual nodes per unit weight (default 64).
	VNodes int
	// Weights scales node capacity (default all 1).
	Weights []float64
	// Seed perturbs ring hashes (default 0).
	Seed uint64

	// NodeTimeout bounds each per-node sub-request (default 2s).
	NodeTimeout time.Duration
	// HedgeDelay: 0 derives per-node hedge delays from observed p99s,
	// positive fixes the delay, negative disables hedging.
	HedgeDelay time.Duration
	// ProbeInterval paces hedge-delay refresh and dead-node re-admission
	// probes (default 250ms; negative disables).
	ProbeInterval time.Duration

	// RebalanceEvery, when positive, re-derives the hot set (and, in
	// cost mode, the whole placement) from the live frequency sketches
	// on this cadence and swaps it into the router.
	RebalanceEvery time.Duration
	// TrackerTopK is the sketch capacity feeding the rebalancer
	// (default 512).
	TrackerTopK int

	// Serve carries per-node serving knobs (batching, queueing, quorum,
	// row cache); Systems/Layer/Rebuild are filled per node. Fleet mode
	// only.
	Serve ServeOptions

	// WrapNode, when set, interposes on every node handle before the
	// router sees it — the cluster fault-injection seam (wrap with
	// WrapFaultyNode for chaos campaigns).
	WrapNode func(i int, n ClusterNode) ClusterNode
}

func (cc ClusterConfig) withDefaults() ClusterConfig {
	if cc.Nodes == 0 {
		cc.Nodes = 4
	}
	if cc.ReplicasPerNode == 0 {
		cc.ReplicasPerNode = 1
	}
	if cc.Placement == "" {
		cc.Placement = "ring"
	}
	if cc.Replication == 0 {
		cc.Replication = 2
	}
	if cc.TrackerTopK == 0 {
		cc.TrackerTopK = 512
	}
	return cc
}

// ClusterServer is a running cluster: the router (the only handle
// request traffic needs), the fleet when the nodes live in this binary
// (nil in Peers mode), and the frequency tracker feeding the
// rebalancer. Close stops the rebalance loop, the router, and the
// fleet, in that order.
type ClusterServer struct {
	Router  *ClusterRouter
	Fleet   *ClusterFleet
	Tracker *FreqTracker

	stop chaosOnce
}

// chaosOnce is a tiny stop-channel helper (close-once semantics).
type chaosOnce struct {
	ch   chan struct{}
	done chan struct{}
	once atomic.Bool
}

// NewClusterServer builds the cluster tier: N full-spec nodes (every
// table is procedurally defined by its global index, so holding all
// tables costs a node nothing at rest — the placement partitions
// serving load, not functional capacity, and bit-identity holds on
// every path), a placement replicating the largest-volume tables on
// Replication nodes, and a router fronting it all. With
// RebalanceEvery set, a background loop re-derives table volumes from
// the live frequency sketches and swaps refreshed placements into the
// router — the cluster-scope analogue of the adaptive repartitioner.
func NewClusterServer(a Arch, cfg Config, cc ClusterConfig) (*ClusterServer, error) {
	cc = cc.withDefaults()
	if cfg.Cold != nil {
		return nil, fmt.Errorf("recross: the cold tier is per-node; run cluster nodes as separate -cold processes and front them with Peers")
	}
	cfg, err := cfg.profiled(a)
	if err != nil {
		return nil, err
	}
	if err := cfg.Spec.Validate(); err != nil {
		return nil, err
	}
	spec := cfg.Spec

	// Assemble the node set: an in-binary fleet, or HTTP peers.
	var fleet *ClusterFleet
	var nodes []ClusterNode
	var ids []string
	if len(cc.Peers) > 0 {
		prec, perr := kernels.ParsePrecision(cc.WirePrecision)
		if cc.WirePrecision != "" && perr != nil {
			return nil, fmt.Errorf("recross: wire precision: %w", perr)
		}
		for i, base := range cc.Peers {
			binary := false
			switch cc.Wire {
			case "", "auto":
				// By scheme: explicit http stays JSON; bin:// or a bare
				// host:port means the binary listener.
				binary = !strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://")
			case "json":
			case "binary":
				binary = true
			default:
				return nil, fmt.Errorf("recross: unknown wire %q (auto, json, binary)", cc.Wire)
			}
			var n ClusterNode
			if binary {
				bo := BinNodeOptions{Conns: cc.WireConns, Precision: prec}
				if cc.WrapDial != nil {
					bo.Dial = cc.WrapDial(i, nil)
				}
				n = cluster.NewBinNode(base, base, bo)
			} else {
				n = cluster.NewHTTPNode(base, base, nil)
			}
			nodes = append(nodes, n)
			ids = append(ids, n.ID())
		}
	} else {
		fleet, err = cluster.NewFleet(cc.Nodes, func(i int) (*Server, error) {
			systems, err := cfg.ReplicaSystems(a, cc.ReplicasPerNode)
			if err != nil {
				return nil, err
			}
			layer, err := cfg.newLayer()
			if err != nil {
				return nil, err
			}
			opts := cc.Serve
			opts.Systems = systems
			opts.Layer = layer
			if opts.Rebuild == nil {
				rebuildCfg := cfg
				opts.Rebuild = func(int) (System, error) { return NewSystem(a, rebuildCfg) }
			}
			return serve.New(opts)
		})
		if err != nil {
			return nil, err
		}
		nodes = fleet.Nodes()
		for _, n := range nodes {
			ids = append(ids, n.ID())
		}
	}
	if cc.WrapNode != nil {
		for i := range nodes {
			nodes[i] = cc.WrapNode(i, nodes[i])
		}
	}

	pl, err := clusterPlacement(spec, ids, cc, nil)
	if err != nil {
		if fleet != nil {
			_ = fleet.Close()
		}
		return nil, err
	}

	tracker, err := adapt.NewTracker(spec, adapt.TrackerOptions{TopK: cc.TrackerTopK})
	if err != nil {
		if fleet != nil {
			_ = fleet.Close()
		}
		return nil, err
	}
	routerLayer, err := cfg.newLayer()
	if err != nil {
		if fleet != nil {
			_ = fleet.Close()
		}
		return nil, err
	}
	router, err := cluster.NewRouter(cluster.Options{
		Nodes:         nodes,
		Placement:     pl,
		Layer:         routerLayer,
		NodeTimeout:   cc.NodeTimeout,
		HedgeDelay:    cc.HedgeDelay,
		ProbeInterval: cc.ProbeInterval,
		Observer:      tracker.Observe,
	})
	if err != nil {
		if fleet != nil {
			_ = fleet.Close()
		}
		return nil, err
	}

	cs := &ClusterServer{Router: router, Fleet: fleet, Tracker: tracker}
	cs.stop.ch = make(chan struct{})
	cs.stop.done = make(chan struct{})
	if cc.RebalanceEvery > 0 {
		go cs.rebalance(spec, ids, cc)
	} else {
		close(cs.stop.done)
	}
	return cs, nil
}

// rebalance is the background loop swapping sketch-derived placements
// into the router.
func (cs *ClusterServer) rebalance(spec ModelSpec, ids []string, cc ClusterConfig) {
	defer close(cs.stop.done)
	ticker := time.NewTicker(cc.RebalanceEvery)
	defer ticker.Stop()
	for {
		select {
		case <-cs.stop.ch:
			return
		case <-ticker.C:
		}
		totals := cs.Tracker.Totals()
		var sum int64
		for _, t := range totals {
			sum += t
		}
		if sum == 0 {
			continue // no live signal yet
		}
		pl, err := clusterPlacement(spec, ids, cc, totals)
		if err != nil {
			continue
		}
		if !cs.Router.Placement().Equal(pl) {
			_ = cs.Router.SetPlacement(pl)
		}
	}
}

// clusterPlacement builds a placement per the config. totals, when
// non-nil, are live per-table access counts overriding the offline
// volume estimate (scaled by row bytes so volumes stay byte-weighted).
func clusterPlacement(spec ModelSpec, ids []string, cc ClusterConfig, totals []int64) (*ClusterPlacement, error) {
	vols := partition.AccessVolumes(spec, batchOf(cc.Serve.MaxBatch))
	if totals != nil {
		for i := range vols {
			if i < len(totals) {
				vols[i] = float64(totals[i]) * float64(spec.Tables[i].VecLen) * 4
			}
		}
	}
	k := cc.HotTopK
	switch {
	case k < 0:
		k = 0
	case k == 0:
		k = len(spec.Tables) / 4
		if k < 1 {
			k = 1
		}
	}
	popts := ClusterPlacementOptions{
		Replication: cc.Replication,
		Hot:         cluster.HotTopK(vols, k),
		VNodes:      cc.VNodes,
		Weights:     cc.Weights,
		Seed:        cc.Seed,
	}
	switch cc.Placement {
	case "ring":
		return cluster.RingPlacement(len(spec.Tables), ids, popts)
	case "cost":
		return cluster.CostPlacement(vols, ids, popts)
	default:
		return nil, fmt.Errorf("recross: unknown placement mode %q", cc.Placement)
	}
}

func batchOf(maxBatch int) int {
	if maxBatch > 0 {
		return maxBatch
	}
	return 32
}

// Lookup serves one sample through the router.
func (cs *ClusterServer) Lookup(ctx context.Context, sample Sample) (*ClusterResult, error) {
	return cs.Router.Lookup(ctx, sample)
}

// Close stops the rebalance loop, the router, then the fleet.
func (cs *ClusterServer) Close() error {
	if cs.stop.once.CompareAndSwap(false, true) {
		close(cs.stop.ch)
	}
	<-cs.stop.done
	err := cs.Router.Close()
	if cs.Fleet != nil {
		if ferr := cs.Fleet.Close(); err == nil {
			err = ferr
		}
	}
	return err
}

// ClusterLoadgen drives the router with closed-loop clients.
func ClusterLoadgen(r *ClusterRouter, opts LoadgenOptions) (*ClusterReport, error) {
	return cluster.Loadgen(r, opts)
}

// WrapFaultyNode wraps one ClusterNode with deterministic node-level
// fault injection (kill, partition, slow) for node id; inj may be
// shared across a cluster (nil makes a fresh one). Install through
// ClusterConfig.WrapNode, keeping the handles for manual
// Kill/Revive/Partition control.
func WrapFaultyNode(n ClusterNode, fc NodeFaultConfig, id int, inj *FaultInjector) *FaultyNode {
	return cluster.WrapFaultyNode(n, fc, id, inj)
}

// NewBinServer builds a binary-protocol listener serving a single
// node's lookups — the binary analogue of Server.Handler. Register its
// metrics with srv.RegisterExpo(bs.Expo) and run bs.Serve(lis).
func NewBinServer(srv *Server) (*BinServer, error) {
	return cluster.NewBinServer(cluster.BinServerOptions{Backend: srv, Layer: srv.Layer()})
}

// NewClusterBinServer builds a binary-protocol listener fronting a
// cluster router — the binary analogue of Router.Handler, so routers
// federate over either wire.
func NewClusterBinServer(r *ClusterRouter) (*BinServer, error) {
	return cluster.NewBinServer(cluster.BinServerOptions{Backend: cluster.RouterBackend{R: r}, Layer: r.Layer()})
}

// WrapFaultyBinDial wraps a binary-transport dialer with deterministic
// conn-level fault injection (torn frames, resets, write stalls) per
// fc.Conn for node id; dial nil means plain TCP, inj may be shared
// with node- and replica-tier campaigns. Install through
// ClusterConfig.WrapDial so -chaos-node-* campaigns cover the binary
// wire too.
func WrapFaultyBinDial(dial BinDial, fc NodeFaultConfig, id int, inj *FaultInjector) BinDial {
	return cluster.WrapFaultyDial(dial, fc, id, inj)
}

// NewReCross builds a fully customized ReCross instance (PE population,
// optimization toggles, region configuration).
func NewReCross(cfg ReCrossConfig) (*ReCrossSystem, error) {
	return core.New(cfg)
}

// DefaultReCrossConfig returns the paper's ReCross-d configuration.
func DefaultReCrossConfig(spec ModelSpec) ReCrossConfig {
	return core.DefaultConfig(spec)
}

// NewProfile runs an offline profiling pass over spec.
func NewProfile(spec ModelSpec, seed int64, samples int) (*Profile, error) {
	return partition.NewProfile(spec, seed, samples)
}

func profileOf(cfg Config) (*Profile, error) {
	if cfg.Profile != nil {
		return cfg.Profile, nil
	}
	return partition.NewProfile(cfg.Spec, cfg.ProfileSeed, cfg.ProfileSamples)
}

// ChannelBytes returns the capacity of a channel with the given rank count,
// for capacity planning.
func ChannelBytes(ranks int) int64 {
	return dram.DDR5(ranks).ChannelBytes()
}
