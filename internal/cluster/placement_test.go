package cluster

import (
	"math"
	"testing"

	"recross/internal/trace"
)

func TestHotTopK(t *testing.T) {
	vols := []float64{5, 1, 9, 9, 3}
	hot := HotTopK(vols, 2)
	want := []bool{false, false, true, true, false}
	for i := range want {
		if hot[i] != want[i] {
			t.Fatalf("HotTopK(2) = %v, want %v", hot, want)
		}
	}
	if HotTopK(vols, 0) != nil {
		t.Error("k=0 should mark none")
	}
	all := HotTopK(vols, 99)
	for i, h := range all {
		if !h {
			t.Errorf("k>len left table %d cold", i)
		}
	}
}

func TestRingPlacementReplication(t *testing.T) {
	hot := []bool{true, true, false, false, false, false, false, false}
	p, err := RingPlacement(8, []string{"a", "b", "c", "d"}, PlacementOptions{Hot: hot, Replication: 3})
	if err != nil {
		t.Fatal(err)
	}
	for tb, reps := range p.Replicas {
		want := 1
		if hot[tb] {
			want = 3
		}
		if len(reps) != want {
			t.Errorf("table %d: %d owners, want %d", tb, len(reps), want)
		}
		seen := map[int]bool{}
		for _, n := range reps {
			if seen[n] {
				t.Errorf("table %d: duplicate owner %d", tb, n)
			}
			seen[n] = true
			if !p.Holds(n, tb) {
				t.Errorf("Holds(%d,%d) false for an owner", n, tb)
			}
		}
	}
	if p.Replicated() != 2 {
		t.Errorf("Replicated() = %d, want 2", p.Replicated())
	}
	// Every non-hot table is unique to its single owner.
	unique := 0
	for i := range p.Nodes {
		unique += len(p.UniqueTables(i))
	}
	if unique != 6 {
		t.Errorf("%d unique tables across nodes, want 6", unique)
	}
}

// TestCostPlacementBalance: with no dominant table, LPT lands within a
// few percent of the fractional LP floor.
func TestCostPlacementBalance(t *testing.T) {
	vols := make([]float64, 64)
	var sum float64
	for i := range vols {
		vols[i] = 1 + 2*float64(mix64(uint64(i)+1)%1000)/1000 // deterministic in [1,3)
		sum += vols[i]
	}
	p, err := CostPlacement(vols, []string{"a", "b", "c", "d"}, PlacementOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Mode != "cost" {
		t.Errorf("mode %q", p.Mode)
	}
	if p.LPBound <= 0 {
		t.Fatalf("LP bound %v not solved", p.LPBound)
	}
	if want := sum / 4; math.Abs(p.LPBound-want) > 1e-6*want {
		t.Errorf("LP bound %.4f, want sum/n = %.4f", p.LPBound, want)
	}
	if ratio := p.Makespan / p.LPBound; ratio > 1.15 {
		t.Errorf("makespan %.4f is %.3fx the LP floor %.4f", p.Makespan, ratio, p.LPBound)
	}
}

func TestCostPlacementWeighted(t *testing.T) {
	vols := make([]float64, 40)
	for i := range vols {
		vols[i] = 1
	}
	p, err := CostPlacement(vols, []string{"small", "big"}, PlacementOptions{Weights: []float64{1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	onBig := 0
	for _, reps := range p.Replicas {
		if reps[0] == 1 {
			onBig++
		}
	}
	if onBig < 25 || onBig > 35 {
		t.Errorf("weight-3 node got %d/40 tables, want ~30", onBig)
	}
}

// TestCostPlacementHotSplit: replicating the dominant table halves the
// bottleneck — the exact effect hot-table replication exists for.
func TestCostPlacementHotSplit(t *testing.T) {
	vols := []float64{8, 1, 1, 1, 1, 1, 1}
	nodes := []string{"a", "b", "c", "d"}
	solo, err := CostPlacement(vols, nodes, PlacementOptions{})
	if err != nil {
		t.Fatal(err)
	}
	hot, err := CostPlacement(vols, nodes, PlacementOptions{Hot: HotTopK(vols, 1), Replication: 2})
	if err != nil {
		t.Fatal(err)
	}
	if solo.Makespan != 8 {
		t.Errorf("unreplicated makespan %.2f, want 8 (dominant table)", solo.Makespan)
	}
	if hot.Makespan >= solo.Makespan {
		t.Errorf("replication did not lower the bottleneck: %.2f >= %.2f", hot.Makespan, solo.Makespan)
	}
	if len(hot.Replicas[0]) != 2 {
		t.Errorf("hot table has %d owners, want 2", len(hot.Replicas[0]))
	}
}

func TestPlacementEqual(t *testing.T) {
	a, _ := RingPlacement(8, []string{"a", "b"}, PlacementOptions{Seed: 1})
	b, _ := RingPlacement(8, []string{"a", "b"}, PlacementOptions{Seed: 1})
	if !a.Equal(b) {
		t.Error("identical placements not Equal")
	}
	if a.Equal(nil) {
		t.Error("Equal(nil)")
	}
	c, _ := CostPlacement([]float64{9, 1, 1, 1, 1, 1, 1, 1}, []string{"a", "b"}, PlacementOptions{})
	if a.Equal(c) && !c.Equal(a) {
		t.Error("Equal not symmetric")
	}
}

func TestPlacementValidation(t *testing.T) {
	if _, err := RingPlacement(0, []string{"a"}, PlacementOptions{}); err == nil {
		t.Error("0 tables accepted")
	}
	if _, err := RingPlacement(4, nil, PlacementOptions{}); err == nil {
		t.Error("no nodes accepted")
	}
	if _, err := RingPlacement(4, []string{"a", "a"}, PlacementOptions{}); err == nil {
		t.Error("duplicate node id accepted")
	}
	if _, err := RingPlacement(4, []string{"a", ""}, PlacementOptions{}); err == nil {
		t.Error("empty node id accepted")
	}
	if _, err := RingPlacement(4, []string{"a"}, PlacementOptions{Hot: []bool{true}}); err == nil {
		t.Error("hot length mismatch accepted")
	}
	if _, err := CostPlacement([]float64{1, 1}, []string{"a", "b"}, PlacementOptions{Weights: []float64{1}}); err == nil {
		t.Error("weight count mismatch accepted")
	}
	if _, err := CostPlacementFor(nil, 8, []string{"a"}, PlacementOptions{}); err == nil {
		t.Error("nil profile accepted")
	}
}

// TestPlacementBytes sanity-checks the balance measure itself.
func TestPlacementBytes(t *testing.T) {
	spec := trace.Uniform(4, 1000, 8, 2)
	p := &Placement{
		Nodes:    []string{"a", "b"},
		Replicas: [][]int{{0}, {0}, {1}, {1}},
	}
	p.finalize()
	bytes := p.NodeTableBytes(spec)
	if bytes[0] != bytes[1] || bytes[0] == 0 {
		t.Errorf("uniform split gave bytes %v", bytes)
	}
	if skew := p.BytesSkew(spec); math.Abs(skew-1) > 1e-9 {
		t.Errorf("perfect split skew %v, want 1", skew)
	}
}
