package cluster

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"recross/internal/serve"
	"recross/internal/trace"
)

// Report summarizes one cluster load-generation run.
type Report struct {
	Clients  int
	Wall     time.Duration
	Requests int64 // completed successfully (including degraded)
	Degraded int64 // completed with >=1 functional-fallback op
	Hedged   int64 // completed with >=1 hedge fired
	Retried  int64 // completed after >=1 sub-request failover
	Canceled int64
	Errors   int64
	Thru     float64 // completed requests per second
	P50      time.Duration
	P95      time.Duration
	P99      time.Duration
	Max      time.Duration
	// Stats is the router's counter snapshot at the end of the run.
	Stats Stats
}

// String renders the human-readable report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cluster loadgen: %d clients, %.2fs wall\n", r.Clients, r.Wall.Seconds())
	fmt.Fprintf(&b, "  completed  %d (%.0f req/s)\n", r.Requests, r.Thru)
	if r.Degraded > 0 {
		fmt.Fprintf(&b, "  degraded   %d (functional fallback)\n", r.Degraded)
	}
	if r.Hedged > 0 || r.Retried > 0 {
		fmt.Fprintf(&b, "  hedged %d (won %d), retried %d\n", r.Hedged, r.Stats.HedgesWon, r.Retried)
	}
	if r.Canceled > 0 || r.Errors > 0 {
		fmt.Fprintf(&b, "  canceled %d, errors %d\n", r.Canceled, r.Errors)
	}
	fmt.Fprintf(&b, "  latency    p50 %v  p95 %v  p99 %v  max %v\n", r.P50, r.P95, r.P99, r.Max)
	fmt.Fprintf(&b, "  subreqs    %d (failures %d), rebalances %d\n",
		r.Stats.Subrequests, r.Stats.SubFailures, r.Stats.Rebalances)
	return b.String()
}

// Loadgen drives the router with closed-loop clients, reusing the
// single-node generator knobs (serve.LoadgenOptions) — including the
// mid-run hot-set shift the rebalancer exists to absorb.
func Loadgen(r *Router, opts serve.LoadgenOptions) (*Report, error) {
	opts = loadgenDefaults(opts)
	if err := opts.Spec.Validate(); err != nil {
		return nil, err
	}
	if opts.Clients < 1 {
		return nil, fmt.Errorf("cluster: %d clients", opts.Clients)
	}

	type clientStats struct {
		lat                       []float64 // ns
		degraded, hedged, retried int64
		canceled, errors          int64
	}
	stats := make([]clientStats, opts.Clients)
	deadline := time.Now().Add(opts.Duration)
	start := time.Now()
	var shiftTime time.Time
	if opts.ShiftAt > 0 {
		shiftTime = start.Add(opts.ShiftAt)
	}

	var wg sync.WaitGroup
	errc := make(chan error, opts.Clients)
	for c := 0; c < opts.Clients; c++ {
		gen, err := trace.NewGenerator(opts.Spec, opts.Seed+int64(c))
		if err != nil {
			return nil, err
		}
		if opts.TailMass > 0 {
			if err := gen.SetTailMass(opts.TailMass); err != nil {
				return nil, err
			}
		}
		wg.Add(1)
		go func(c int, gen *trace.Generator) {
			defer wg.Done()
			st := &stats[c]
			shifted := false
			for time.Now().Before(deadline) {
				if !shifted && !shiftTime.IsZero() && !time.Now().Before(shiftTime) {
					if err := gen.ShiftHotSet(opts.ShiftSalt); err != nil {
						select {
						case errc <- err:
						default:
						}
						return
					}
					shifted = true
				}
				sample := gen.Sample()
				if len(sample) == 0 {
					continue
				}
				ctx := context.Background()
				var cancel context.CancelFunc = func() {}
				if opts.Timeout > 0 {
					ctx, cancel = context.WithTimeout(ctx, opts.Timeout)
				}
				t0 := time.Now()
				res, err := r.Lookup(ctx, sample)
				cancel()
				switch {
				case err == nil:
					st.lat = append(st.lat, float64(time.Since(t0).Nanoseconds()))
					if res.Degraded {
						st.degraded++
					}
					if res.Hedged {
						st.hedged++
					}
					if res.Retries > 0 {
						st.retried++
					}
				case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
					st.canceled++
				case errors.Is(err, ErrRouterClosed):
					return
				default:
					st.errors++
					select {
					case errc <- err:
					default:
					}
				}
			}
		}(c, gen)
	}
	wg.Wait()
	wall := time.Since(start)

	rep := &Report{Clients: opts.Clients, Wall: wall, Stats: r.Stats()}
	var all []float64
	for i := range stats {
		rep.Requests += int64(len(stats[i].lat))
		rep.Degraded += stats[i].degraded
		rep.Hedged += stats[i].hedged
		rep.Retried += stats[i].retried
		rep.Canceled += stats[i].canceled
		rep.Errors += stats[i].errors
		all = append(all, stats[i].lat...)
	}
	if wall > 0 {
		rep.Thru = float64(rep.Requests) / wall.Seconds()
	}
	rep.P50, rep.P95, rep.P99 = serve.PercentileDurations(all)
	for _, ns := range all {
		if d := time.Duration(ns); d > rep.Max {
			rep.Max = d
		}
	}
	if rep.Requests == 0 {
		select {
		case err := <-errc:
			return rep, fmt.Errorf("cluster: loadgen completed no requests: %w", err)
		default:
			return rep, errors.New("cluster: loadgen completed no requests")
		}
	}
	return rep, nil
}

func loadgenDefaults(o serve.LoadgenOptions) serve.LoadgenOptions {
	if o.Clients == 0 {
		o.Clients = 8
	}
	if o.Duration == 0 {
		o.Duration = 5 * time.Second
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.ShiftSalt == 0 {
		o.ShiftSalt = 1
	}
	return o
}
