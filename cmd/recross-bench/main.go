// recross-bench regenerates every table and figure of the paper's
// evaluation section (§5) and prints them as text tables; EXPERIMENTS.md
// records a captured run next to the paper's numbers.
//
// Usage:
//
//	recross-bench [flags] [experiment ...]
//
// Experiments: fig3 fig4 fig5 fig6 fig9 fig10 fig11 fig12 fig13 fig14
// fig15 table3 (default: all, in paper order).
//
// Flags:
//
//	-quick        scaled-down workload (seconds instead of minutes)
//	-serial       disable concurrent sweep points
//	-batch N      batch size (default 32)
//	-pooling N    gathers per embedding operation (default 80)
//	-veclen N     embedding vector length (default 64)
//	-ranks N      ranks per channel (default 2)
//	-json         machine-readable output: one JSON document on stdout
//	              (progress moves to stderr)
//	-perf FILE    run the scheduler perf microbenchmarks and write a JSON
//	              trajectory file (e.g. BENCH_PR4.json); without experiment
//	              names, runs only the perf suite
//	-cpuprofile FILE  write a CPU profile of the run
//	-memprofile FILE  write a heap profile at exit
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"recross/internal/experiments"
)

// jsonResult is one experiment's machine-readable output. Tables carry
// their header and cell grid verbatim; text-only experiments (fig6)
// carry Text instead.
type jsonResult struct {
	Name    string     `json:"name"`
	Title   string     `json:"title,omitempty"`
	Note    string     `json:"note,omitempty"`
	Cols    []string   `json:"cols,omitempty"`
	Rows    [][]string `json:"rows,omitempty"`
	Text    string     `json:"text,omitempty"`
	Seconds float64    `json:"seconds"`
}

// jsonDoc is the top-level -json document.
type jsonDoc struct {
	VecLen  int          `json:"veclen"`
	Pooling int          `json:"pooling"`
	Batch   int          `json:"batch"`
	Ranks   int          `json:"ranks"`
	Quick   bool         `json:"quick"`
	Results []jsonResult `json:"results"`
}

func main() {
	quick := flag.Bool("quick", false, "scaled-down workload")
	csvDir := flag.String("csv", "", "also write each table as <dir>/<experiment>.csv")
	jsonOut := flag.Bool("json", false, "emit one JSON document on stdout instead of text tables")
	serial := flag.Bool("serial", false, "disable concurrent sweep points")
	batch := flag.Int("batch", 0, "batch size (0 = default)")
	pooling := flag.Int("pooling", 0, "gathers per op (0 = default)")
	veclen := flag.Int("veclen", 0, "embedding vector length (0 = default)")
	ranks := flag.Int("ranks", 0, "ranks per channel (0 = default)")
	perfOut := flag.String("perf", "", "run the scheduler perf microbenchmarks and write a JSON trajectory file")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	flag.Parse()

	finishProfiles := startProfiles(*cpuprofile, *memprofile)
	defer finishProfiles()

	if *perfOut != "" {
		if err := runPerf(*perfOut); err != nil {
			fmt.Fprintf(os.Stderr, "perf: %v\n", err)
			finishProfiles()
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "perf: wrote %s\n", *perfOut)
		if len(flag.Args()) == 0 {
			return
		}
	}

	cfg := experiments.Paper()
	if *quick {
		cfg = experiments.Quick()
	}
	if *batch > 0 {
		cfg.Batch = *batch
	}
	if *pooling > 0 {
		cfg.Pooling = *pooling
	}
	if *veclen > 0 {
		cfg.VecLen = *veclen
	}
	if *ranks > 0 {
		cfg.Ranks = *ranks
	}
	if *serial {
		cfg.Parallel = false
	}

	runners := map[string]func() (fmt.Stringer, error){
		"fig3":  func() (fmt.Stringer, error) { return experiments.Fig3(cfg) },
		"fig4":  func() (fmt.Stringer, error) { return experiments.Fig4(cfg) },
		"fig5":  func() (fmt.Stringer, error) { return experiments.Fig5(cfg) },
		"fig6":  func() (fmt.Stringer, error) { s, err := experiments.Fig6(); return text(s), err },
		"fig9":  func() (fmt.Stringer, error) { return experiments.Fig9(cfg) },
		"fig10": func() (fmt.Stringer, error) { return experiments.Fig10(cfg) },
		"fig11": func() (fmt.Stringer, error) { return experiments.Fig11(cfg) },
		"fig12": func() (fmt.Stringer, error) { return experiments.Fig12(cfg) },
		"fig13": func() (fmt.Stringer, error) { return experiments.Fig13(cfg) },
		"fig14": func() (fmt.Stringer, error) { return experiments.Fig14(cfg) },
		"fig15": func() (fmt.Stringer, error) { return experiments.Fig15(cfg) },
		"table3": func() (fmt.Stringer, error) {
			return experiments.Table3(), nil
		},
		// Extension studies beyond the paper's evaluation.
		"ext-refresh":   func() (fmt.Stringer, error) { return experiments.ExtRefresh(cfg) },
		"ext-channels":  func() (fmt.Stringer, error) { return experiments.ExtChannels(cfg) },
		"ext-subarrays": func() (fmt.Stringer, error) { return experiments.ExtSubarrays(cfg) },
		"ext-training":  func() (fmt.Stringer, error) { return experiments.ExtTraining(cfg) },
		"ext-latency":   func() (fmt.Stringer, error) { return experiments.ExtLatency(cfg) },
		"ext-ddr4":      func() (fmt.Stringer, error) { return experiments.ExtDDR4(cfg) },
	}
	order := []string{"fig3", "fig4", "fig5", "fig6", "fig9", "fig10",
		"fig11", "fig12", "fig13", "fig14", "fig15", "table3"}
	extOrder := []string{"ext-refresh", "ext-channels", "ext-subarrays",
		"ext-training", "ext-latency", "ext-ddr4"}

	names := flag.Args()
	switch {
	case len(names) == 0:
		names = order
	case len(names) == 1 && names[0] == "ext":
		names = extOrder
	case len(names) == 1 && names[0] == "all":
		names = append(append([]string{}, order...), extOrder...)
	}
	doc := jsonDoc{
		VecLen: cfg.VecLen, Pooling: cfg.Pooling, Batch: cfg.Batch,
		Ranks: cfg.Ranks, Quick: *quick,
	}
	if *jsonOut {
		fmt.Fprintf(os.Stderr, "recross-bench: veclen=%d pooling=%d batch=%d ranks=%d quick=%v\n",
			cfg.VecLen, cfg.Pooling, cfg.Batch, cfg.Ranks, *quick)
	} else {
		fmt.Printf("recross-bench: veclen=%d pooling=%d batch=%d ranks=%d quick=%v\n\n",
			cfg.VecLen, cfg.Pooling, cfg.Batch, cfg.Ranks, *quick)
	}
	for _, n := range names {
		run, ok := runners[n]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (want one of %v, %v, 'ext', or 'all')\n", n, order, extOrder)
			os.Exit(2)
		}
		start := time.Now()
		res, err := run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", n, err)
			os.Exit(1)
		}
		took := time.Since(start).Seconds()
		if *jsonOut {
			jr := jsonResult{Name: n, Seconds: took}
			if tb, ok := res.(*experiments.Table); ok {
				jr.Title, jr.Note, jr.Cols, jr.Rows = tb.Title, tb.Note, tb.Cols, tb.Rows
			} else {
				jr.Text = res.String()
			}
			doc.Results = append(doc.Results, jr)
			fmt.Fprintf(os.Stderr, "%s done in %.1fs\n", n, took)
		} else {
			fmt.Println(res.String())
			fmt.Printf("(%s took %.1fs)\n\n", n, took)
		}
		if *csvDir != "" {
			if tb, ok := res.(*experiments.Table); ok {
				if err := os.MkdirAll(*csvDir, 0o755); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				path := filepath.Join(*csvDir, n+".csv")
				if err := os.WriteFile(path, []byte(tb.CSV()), 0o644); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
			}
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

type text string

func (t text) String() string { return string(t) }

// startProfiles starts the optional CPU profile and returns the function
// that stops it and writes the optional heap profile.
func startProfiles(cpu, mem string) func() {
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	return func() {
		if cpu != "" {
			pprof.StopCPUProfile()
		}
		if mem == "" {
			return
		}
		f, err := os.Create(mem)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
		defer f.Close()
		runtime.GC() // materialize the retained-heap picture
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}
}
