package coldstore

import (
	"sync"
	"sync/atomic"
)

// pageCache is a small CLOCK cache of device pages in front of the backing
// file — the host-side page buffer of the cold tier. One mutex guards the
// whole cache: probes are page-granular (a hit copies one vector out), so
// contention is far below the row-cache tier's and sharding would buy
// nothing.
type pageCache struct {
	mu       sync.Mutex
	index    map[int64]int // page id -> frame
	pages    []int64       // frame -> page id (-1 empty)
	vals     []float32     // frame arenas, frameLen each
	ref      []bool        // CLOCK reference bits
	hand     int
	frameLen int

	hits, misses, evictions atomic.Int64
	pageReads               atomic.Int64
}

func newPageCache(frames, frameLen int) *pageCache {
	c := &pageCache{
		index:    make(map[int64]int, frames),
		pages:    make([]int64, frames),
		vals:     make([]float32, frames*frameLen),
		ref:      make([]bool, frames),
		frameLen: frameLen,
	}
	for i := range c.pages {
		c.pages[i] = -1
	}
	return c
}

func (c *pageCache) cap() int { return len(c.pages) }

// get copies vector [off, off+len(dst)) of the cached page into dst.
func (c *pageCache) get(page int64, off int, dst []float32) bool {
	c.mu.Lock()
	f, ok := c.index[page]
	if !ok {
		c.mu.Unlock()
		c.misses.Add(1)
		return false
	}
	base := f * c.frameLen
	copy(dst, c.vals[base+off:base+off+len(dst)])
	c.ref[f] = true
	c.mu.Unlock()
	c.hits.Add(1)
	return true
}

// contains probes without copying or counting (the prefetcher's check).
func (c *pageCache) contains(page int64) bool {
	c.mu.Lock()
	_, ok := c.index[page]
	c.mu.Unlock()
	return ok
}

// put installs a page's contents, evicting by CLOCK when full. A racing
// double-install of the same page is harmless (the values are identical by
// construction) and keeps the first frame.
func (c *pageCache) put(page int64, vals []float32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.index[page]; ok {
		return
	}
	// CLOCK sweep for a victim frame.
	var f int
	for {
		f = c.hand
		c.hand = (c.hand + 1) % len(c.pages)
		if c.pages[f] == -1 {
			break
		}
		if !c.ref[f] {
			delete(c.index, c.pages[f])
			c.evictions.Add(1)
			break
		}
		c.ref[f] = false
	}
	c.pages[f] = page
	c.ref[f] = true
	c.index[page] = f
	copy(c.vals[f*c.frameLen:(f+1)*c.frameLen], vals)
}

// reset drops every cached page (Remap invalidation).
func (c *pageCache) reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range c.pages {
		c.pages[i] = -1
		c.ref[i] = false
	}
	c.index = make(map[int64]int, len(c.pages))
	c.hand = 0
}

type pageCacheStats struct {
	hits, misses, evictions, reads int64
}

func (c *pageCache) stats() pageCacheStats {
	return pageCacheStats{
		hits:      c.hits.Load(),
		misses:    c.misses.Load(),
		evictions: c.evictions.Load(),
		reads:     c.pageReads.Load(),
	}
}
