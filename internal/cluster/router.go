package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"recross/internal/embedding"
	"recross/internal/serve"
	"recross/internal/sim"
	"recross/internal/trace"
)

// ErrRouterClosed reports a Lookup on a closed router.
var ErrRouterClosed = errors.New("cluster: router closed")

// NodeState is the router's view of one node.
type NodeState int32

const (
	// NodeHealthy: serving normally.
	NodeHealthy NodeState = iota
	// NodeSuspect: recent failures (or freshly re-admitted); still
	// dispatched to, but a replica is preferred when one is healthier.
	NodeSuspect
	// NodeDead: consecutive failures crossed FailThreshold; excluded
	// from dispatch until the prober re-admits it.
	NodeDead
)

func (s NodeState) String() string {
	switch s {
	case NodeHealthy:
		return "healthy"
	case NodeSuspect:
		return "suspect"
	case NodeDead:
		return "dead"
	default:
		return fmt.Sprintf("state(%d)", int32(s))
	}
}

// Options configures NewRouter.
type Options struct {
	// Nodes are the cluster members, indexed identically to
	// Placement.Nodes (required, at least one).
	Nodes []Node
	// Placement maps tables to nodes (required; SetPlacement swaps it
	// live).
	Placement *Placement
	// Layer is the router's own functional embedding layer, used to
	// answer ops whose owning nodes are all unavailable (required).
	// Procedural layers make the fallback bit-identical to any node.
	Layer *embedding.Layer
	// NodeTimeout bounds each sub-request (default 2s).
	NodeTimeout time.Duration
	// HedgeDelay controls hedged requests for ops with >1 available
	// replica: 0 (default) derives the delay per node from its observed
	// p99 sub-request latency; a positive value fixes it; negative
	// disables hedging.
	HedgeDelay time.Duration
	// FailThreshold is how many consecutive sub-request failures mark a
	// node dead (default 3).
	FailThreshold int
	// ProbeInterval paces the background prober that recomputes hedge
	// delays and re-admits dead nodes (default 250ms; negative disables
	// the prober).
	ProbeInterval time.Duration
	// Observer, when non-nil, sees every routed sample (the adaptive
	// tracker's tap). Runs on the caller's goroutine; must be cheap and
	// concurrency-safe.
	Observer func(trace.Sample)
}

func (o Options) withDefaults() Options {
	if o.NodeTimeout == 0 {
		o.NodeTimeout = 2 * time.Second
	}
	if o.FailThreshold == 0 {
		o.FailThreshold = 3
	}
	if o.ProbeInterval == 0 {
		o.ProbeInterval = 250 * time.Millisecond
	}
	return o
}

// Result is one answered cluster lookup.
type Result struct {
	// Vectors holds the pooled vector of each op, in request order,
	// bit-identical to embedding.Layer.Reduce on the same ops.
	Vectors [][]float32
	// Nodes is how many distinct nodes served sub-requests.
	Nodes int
	// Degraded marks an answer where at least one op came from the
	// router's functional fallback because no owner was available.
	Degraded bool
	// DegradedOps counts those fallback ops.
	DegradedOps int
	// Hedged marks a request where at least one hedge fired.
	Hedged bool
	// Retries counts failed sub-requests retried on a replica.
	Retries int
	// ServiceCycles is the max simulated batch latency over the
	// sub-requests — the parallel cluster's critical-path analogue.
	ServiceCycles sim.Cycle
	// Total is end-to-end wall time in the router.
	Total time.Duration
}

// nodeState is the router's per-node bookkeeping.
type nodeState struct {
	node Node
	idx  int

	state       atomic.Int32
	consecFails atomic.Int32
	outstanding atomic.Int64 // in-flight sub-requests
	sent        atomic.Int64 // cumulative dispatched sub-requests (tie-break)
	lookups     atomic.Int64
	failures    atomic.Int64
	hedges      atomic.Int64

	lat     *serve.Hist  // sub-request wall latency, ns
	hedgeNs atomic.Int64 // current hedge delay, ns
}

func (ns *nodeState) available() bool {
	return NodeState(ns.state.Load()) != NodeDead
}

func (ns *nodeState) ok() {
	ns.consecFails.Store(0)
	ns.state.Store(int32(NodeHealthy))
	ns.lookups.Add(1)
}

func (ns *nodeState) fail(threshold int) {
	ns.failures.Add(1)
	if int(ns.consecFails.Add(1)) >= threshold {
		ns.state.Store(int32(NodeDead))
	} else {
		ns.state.Store(int32(NodeSuspect))
	}
}

// Router is the stateless scatter-gather front of a cluster: it splits
// each sample by the placement, dispatches per-node sub-requests
// concurrently under NodeTimeout, hedges slow sub-requests after a
// p99-derived delay when a replica is available, retries failed
// sub-requests on replicas, answers orphaned ops from the functional
// layer, and reassembles results bit-identically in request order.
// "Stateless" means it holds no table data — only routing state — so
// any number of routers can front the same nodes. All methods are safe
// for concurrent use.
type Router struct {
	opts    Options
	nodes   []*nodeState
	pl      atomic.Pointer[Placement]
	metrics *routerMetrics
	scratch sync.Pool // *embedding.Scratch for fallback reductions

	closed   atomic.Bool
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewRouter builds and starts a router (plus its background prober,
// unless ProbeInterval is negative).
func NewRouter(opts Options) (*Router, error) {
	opts = opts.withDefaults()
	if len(opts.Nodes) == 0 {
		return nil, errors.New("cluster: router needs at least one node")
	}
	if opts.Layer == nil {
		return nil, errors.New("cluster: router needs a functional layer")
	}
	if err := checkPlacement(opts.Placement, len(opts.Nodes), opts.Layer.Tables()); err != nil {
		return nil, err
	}
	r := &Router{
		opts:    opts,
		metrics: newRouterMetrics(),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	r.scratch.New = func() any { return &embedding.Scratch{} }
	r.pl.Store(opts.Placement)
	for i, n := range opts.Nodes {
		ns := &nodeState{node: n, idx: i, lat: serve.NewHist()}
		ns.hedgeNs.Store(int64(defaultHedge))
		r.nodes = append(r.nodes, ns)
	}
	if opts.ProbeInterval > 0 {
		go r.probe()
	} else {
		close(r.done)
	}
	return r, nil
}

func checkPlacement(p *Placement, nodes, tables int) error {
	if p == nil {
		return errors.New("cluster: router needs a placement")
	}
	if len(p.Nodes) != nodes {
		return fmt.Errorf("cluster: placement covers %d nodes, router has %d", len(p.Nodes), nodes)
	}
	if p.Tables() != tables {
		return fmt.Errorf("cluster: placement covers %d tables, layer has %d", p.Tables(), tables)
	}
	for t, reps := range p.Replicas {
		if len(reps) == 0 {
			return fmt.Errorf("cluster: table %d has no owners", t)
		}
		for _, i := range reps {
			if i < 0 || i >= nodes {
				return fmt.Errorf("cluster: table %d owner %d out of [0,%d)", t, i, nodes)
			}
		}
	}
	return nil
}

// Placement returns the current placement.
func (r *Router) Placement() *Placement { return r.pl.Load() }

// SetPlacement swaps the routing table atomically; in-flight requests
// finish on the placement they started with. Counts as a rebalance.
func (r *Router) SetPlacement(p *Placement) error {
	if err := checkPlacement(p, len(r.nodes), r.opts.Layer.Tables()); err != nil {
		return err
	}
	r.pl.Store(p)
	r.metrics.Rebalances.Add(1)
	return nil
}

// Nodes reports the cluster size.
func (r *Router) Nodes() int { return len(r.nodes) }

// Layer returns the router's functional embedding layer (shared with
// the binary listener for request validation).
func (r *Router) Layer() *embedding.Layer { return r.opts.Layer }

// NodeState reports the router's view of node i.
func (r *Router) NodeState(i int) NodeState {
	return NodeState(r.nodes[i].state.Load())
}

// group is the per-node slice of one scattered sample.
type group struct {
	node int   // primary node index
	ops  []int // op positions within the sample
}

// Lookup serves one sample across the cluster. Errors are reserved for
// caller mistakes (bad ops) and closure; node loss never surfaces as an
// error — orphaned ops are answered from the functional layer with
// Result.Degraded set.
func (r *Router) Lookup(ctx context.Context, sample trace.Sample) (*Result, error) {
	if r.closed.Load() {
		return nil, ErrRouterClosed
	}
	if len(sample) == 0 {
		return nil, errors.New("cluster: empty sample")
	}
	pl := r.pl.Load()
	for i, op := range sample {
		if op.Table < 0 || op.Table >= pl.Tables() {
			return nil, fmt.Errorf("cluster: op %d table %d out of [0,%d)", i, op.Table, pl.Tables())
		}
	}
	if r.opts.Observer != nil {
		r.opts.Observer(sample)
	}
	start := time.Now()
	r.metrics.Requests.Add(1)

	// Scatter plan: each op goes to the least-loaded available owner of
	// its table; ops sharing a node ride one sub-request. pending tracks
	// work assigned within this plan so a burst of ops on one hot table
	// spreads across its replicas even at zero ambient concurrency.
	assign := make([]int, len(sample))
	pending := make([]int64, len(r.nodes))
	for i, op := range sample {
		assign[i] = r.pickNode(pl.Replicas[op.Table], pending, nil)
		if assign[i] >= 0 {
			pending[assign[i]]++
		}
	}
	var groups []group
	byNode := make(map[int]int, 4) // node -> index in groups
	for i, n := range assign {
		if n < 0 {
			continue
		}
		gi, ok := byNode[n]
		if !ok {
			gi = len(groups)
			byNode[n] = gi
			groups = append(groups, group{node: n})
		}
		groups[gi].ops = append(groups[gi].ops, i)
	}

	res := &Result{Vectors: make([][]float32, len(sample))}
	served := make(map[int]bool, len(groups)) // distinct serving nodes
	failed, from := r.scatter(ctx, pl, sample, groups, res, served)

	// Functional fallback candidates: ops with no available owner.
	var failedOps []int
	for i, n := range assign {
		if n < 0 {
			failedOps = append(failedOps, i)
		}
	}

	// Per-op failover round: a failed group may mix tables that still
	// have live owners elsewhere with tables unique to the failed node
	// (serveGroup's whole-group alternate covers only the former case
	// when the mix is pure). Re-plan each failed op individually off the
	// node that failed it; only ops with nowhere left to go degrade.
	if len(failed) > 0 {
		pending2 := make([]int64, len(r.nodes))
		var groups2 []group
		byNode2 := make(map[int]int, 4)
		for _, oi := range failed {
			n := r.pickNode(pl.Replicas[sample[oi].Table], pending2, map[int]bool{from[oi]: true})
			if n < 0 {
				failedOps = append(failedOps, oi)
				continue
			}
			pending2[n]++
			gi, ok := byNode2[n]
			if !ok {
				gi = len(groups2)
				byNode2[n] = gi
				groups2 = append(groups2, group{node: n})
			}
			groups2[gi].ops = append(groups2[gi].ops, oi)
		}
		if len(groups2) > 0 {
			r.metrics.Retries.Add(int64(len(groups2)))
			res.Retries += len(groups2)
			failed2, _ := r.scatter(ctx, pl, sample, groups2, res, served)
			failedOps = append(failedOps, failed2...)
		}
	}
	res.Nodes = len(served)
	// Functional fallback: bit-identical to any node's answer — the
	// tables are the same procedural functions.
	if len(failedOps) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sc := r.scratch.Get().(*embedding.Scratch)
		defer r.scratch.Put(sc)
		for _, oi := range failedOps {
			vec := make([]float32, r.opts.Layer.Table(sample[oi].Table).VecLen())
			if err := r.opts.Layer.ReduceInto(vec, sample[oi], sc); err != nil {
				r.metrics.Failed.Add(1)
				return nil, fmt.Errorf("cluster: fallback reduce: %w", err)
			}
			res.Vectors[oi] = vec
		}
		res.Degraded = true
		res.DegradedOps = len(failedOps)
		r.metrics.Degraded.Add(1)
		r.metrics.FallbackOps.Add(int64(len(failedOps)))
	}

	res.Total = time.Since(start)
	r.metrics.E2E.Record(res.Total.Nanoseconds())
	return res, nil
}

// scatter dispatches one round of per-node sub-requests (one goroutine
// per group), merges successful answers into res and served, and
// returns the ops whose sub-requests failed along with the node each
// failed on (for the caller's per-op failover round).
func (r *Router) scatter(ctx context.Context, pl *Placement, sample trace.Sample, groups []group, res *Result, served map[int]bool) (failed []int, from map[int]int) {
	type outcome struct {
		g       int
		sres    *serve.Result
		err     error
		hedged  bool
		retried bool
	}
	outc := make(chan outcome, len(groups))
	for gi := range groups {
		g := groups[gi]
		sub := make(trace.Sample, len(g.ops))
		for j, oi := range g.ops {
			sub[j] = sample[oi]
		}
		go func(gi int, g group, sub trace.Sample) {
			sres, hedged, retried, err := r.serveGroup(ctx, pl, g, sub)
			outc <- outcome{g: gi, sres: sres, err: err, hedged: hedged, retried: retried}
		}(gi, g, sub)
	}
	from = make(map[int]int, 4)
	for range groups {
		o := <-outc
		g := groups[o.g]
		if o.hedged {
			res.Hedged = true
		}
		if o.retried {
			res.Retries++
		}
		if o.err != nil {
			failed = append(failed, g.ops...)
			for _, oi := range g.ops {
				from[oi] = g.node
			}
			continue
		}
		served[g.node] = true
		for j, oi := range g.ops {
			res.Vectors[oi] = o.sres.Vectors[j]
		}
		if o.sres.ServiceCycles > res.ServiceCycles {
			res.ServiceCycles = o.sres.ServiceCycles
		}
	}
	return failed, from
}

// pickNode selects the least-outstanding available node among cands
// (ties: fewest cumulative sent, then lowest index), excluding `not`.
// Returns -1 when no candidate is available.
func (r *Router) pickNode(cands []int, pending []int64, not map[int]bool) int {
	best := -1
	var bestOut, bestSent int64
	for _, c := range cands {
		if not != nil && not[c] {
			continue
		}
		ns := r.nodes[c]
		if !ns.available() {
			continue
		}
		out := ns.outstanding.Load()
		if pending != nil {
			out += pending[c]
		}
		sent := ns.sent.Load()
		if best < 0 || out < bestOut || (out == bestOut && sent < bestSent) {
			best, bestOut, bestSent = c, out, sent
		}
	}
	return best
}

const (
	defaultHedge = 25 * time.Millisecond
	minHedge     = 200 * time.Microsecond
)

// serveGroup runs one per-node sub-request with hedging and one
// failover retry. The alternates considered are nodes holding every
// table of the group (for single-table groups: the table's replicas).
func (r *Router) serveGroup(ctx context.Context, pl *Placement, g group, sub trace.Sample) (res *serve.Result, hedged, retried bool, err error) {
	primary := r.nodes[g.node]

	type reply struct {
		res   *serve.Result
		err   error
		node  *nodeState
		hedge bool
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	replies := make(chan reply, 2) // buffered: losers never block
	var settled atomic.Bool

	launch := func(ns *nodeState, hedge bool) {
		go func() {
			sres, cerr := r.callNode(cctx, ns, sub, &settled)
			replies <- reply{res: sres, err: cerr, node: ns, hedge: hedge}
		}()
	}
	launch(primary, false)

	alt := r.alternate(pl, g, sub)
	inflight := 1
	var hedgeTimer *time.Timer
	var hedgeC <-chan time.Time
	if alt != nil && r.opts.HedgeDelay >= 0 {
		d := r.opts.HedgeDelay
		if d == 0 {
			d = time.Duration(primary.hedgeNs.Load())
		}
		if d < minHedge {
			d = minHedge
		}
		hedgeTimer = time.NewTimer(d)
		hedgeC = hedgeTimer.C
		defer hedgeTimer.Stop()
	}

	var firstErr error
	for inflight > 0 {
		select {
		case <-hedgeC:
			hedgeC = nil
			if alt != nil {
				r.metrics.HedgesFired.Add(1)
				primary.hedges.Add(1)
				hedged = true
				launch(alt, true)
				inflight++
				alt = nil
			}
		case rep := <-replies:
			inflight--
			if rep.err == nil {
				settled.Store(true)
				cancel() // release the loser, if any
				if rep.hedge {
					r.metrics.HedgesWon.Add(1)
				}
				return rep.res, hedged, retried, nil
			}
			r.metrics.SubFailures.Add(1)
			if firstErr == nil {
				firstErr = rep.err
			}
			// Primary failed before the hedge fired: promote the
			// alternate immediately as a failover retry.
			if !rep.hedge && alt != nil {
				hedgeC = nil
				r.metrics.Retries.Add(1)
				retried = true
				launch(alt, false)
				inflight++
				alt = nil
			}
		case <-ctx.Done():
			settled.Store(true)
			return nil, hedged, retried, ctx.Err()
		}
	}
	return nil, hedged, retried, firstErr
}

// alternate picks a second node able to serve the whole group, or nil.
func (r *Router) alternate(pl *Placement, g group, sub trace.Sample) *nodeState {
	cands := pl.Replicas[sub[0].Table]
	not := map[int]bool{g.node: true}
	for _, op := range sub[1:] {
		// The alternate must hold every table of the group; intersect.
		var kept []int
		for _, c := range cands {
			if pl.Holds(c, op.Table) {
				kept = append(kept, c)
			}
		}
		cands = kept
		if len(cands) == 0 {
			return nil
		}
	}
	if i := r.pickNode(cands, nil, not); i >= 0 {
		return r.nodes[i]
	}
	return nil
}

// callNode runs one sub-request against a node, maintaining its health
// and latency state. A failure observed after the group settled (we
// canceled the call ourselves) does not mark the node.
func (r *Router) callNode(ctx context.Context, ns *nodeState, sub trace.Sample, settled *atomic.Bool) (*serve.Result, error) {
	cctx, cancel := context.WithTimeout(ctx, r.opts.NodeTimeout)
	defer cancel()
	ns.outstanding.Add(1)
	ns.sent.Add(int64(len(sub)))
	r.metrics.Subrequests.Add(1)
	t0 := time.Now()
	res, err := ns.node.Lookup(cctx, sub)
	ns.outstanding.Add(-1)
	if err != nil {
		if !settled.Load() {
			ns.fail(r.opts.FailThreshold)
		}
		return nil, err
	}
	ns.lat.Record(time.Since(t0).Nanoseconds())
	ns.ok()
	if len(res.Vectors) != len(sub) {
		ns.fail(r.opts.FailThreshold)
		return nil, fmt.Errorf("cluster: node %s returned %d vectors for %d ops", ns.node.ID(), len(res.Vectors), len(sub))
	}
	return res, nil
}

// probe is the background loop: it re-derives each node's hedge delay
// from its observed p99 sub-request latency and health-checks dead
// nodes, re-admitting them as suspect on a successful probe.
func (r *Router) probe() {
	defer close(r.done)
	ticker := time.NewTicker(r.opts.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-ticker.C:
		}
		maxHedge := r.opts.NodeTimeout / 2
		for _, ns := range r.nodes {
			snap := ns.lat.Snapshot()
			if snap.Count > 0 {
				d := time.Duration(snap.P99)
				if d < minHedge {
					d = minHedge
				}
				if d > maxHedge {
					d = maxHedge
				}
				ns.hedgeNs.Store(int64(d))
			}
			if NodeState(ns.state.Load()) != NodeDead {
				continue
			}
			r.metrics.Probes.Add(1)
			ctx, cancel := context.WithTimeout(context.Background(), r.opts.NodeTimeout)
			h, err := ns.node.Health(ctx)
			cancel()
			if err == nil && h.Status != "draining" {
				ns.consecFails.Store(0)
				ns.state.Store(int32(NodeSuspect))
				r.metrics.Revivals.Add(1)
			}
		}
	}
}

// Close stops the prober. It does not close the nodes — the router
// does not own them (a Fleet or the caller does).
func (r *Router) Close() error {
	r.closed.Store(true)
	r.stopOnce.Do(func() { close(r.stop) })
	<-r.done
	return nil
}
