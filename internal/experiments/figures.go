package experiments

import (
	"fmt"
	"sort"
	"strings"

	"recross/internal/arch"
	"recross/internal/baseline"
	"recross/internal/dram"
	"recross/internal/memctrl"
	"recross/internal/partition"
	"recross/internal/sim"
	"recross/internal/stats"
	"recross/internal/trace"
)

// Fig3 reproduces the cumulative access-frequency curves of the Criteo
// Kaggle tables: for each table, the share of accesses absorbed by the
// hottest fraction of rows. The paper's observation: a small percentage of
// data (< 20 %) takes up most of the accesses.
func Fig3(cfg Config) (*Table, error) {
	spec := trace.CriteoKaggle(cfg.VecLen, cfg.Pooling)
	prof, err := partition.NewProfile(spec, cfg.ProfileSeed, cfg.ProfileSamples)
	if err != nil {
		return nil, err
	}
	fracs := []float64{0.001, 0.01, 0.05, 0.10, 0.20}
	t := &Table{
		Title: "Fig. 3 — cumulative access share by hottest row fraction (Criteo Kaggle)",
		Note:  "paper: <20% of rows absorb the vast majority of accesses",
		Cols:  []string{"table", "rows", "0.1%", "1%", "5%", "10%", "20%"},
	}
	for i, tab := range spec.Tables {
		cov := prof.CDFs[i].Coverage(fracs)
		t.AddRow(tab.Name, fmt.Sprintf("%d", tab.Rows),
			f2(cov[0]), f2(cov[1]), f2(cov[2]), f2(cov[3]), f2(cov[4]))
	}
	return t, nil
}

// Fig4 reproduces the per-operation load-imbalance ratios of the symmetric
// contiguous layout at rank, bank-group and bank granularity for 2-, 4- and
// 8-rank configurations: max per-node lookups of one operation over the
// ideally balanced share (§3.1).
func Fig4(cfg Config) (*Table, error) {
	spec := trace.CriteoKaggle(cfg.VecLen, cfg.Pooling)
	t := &Table{
		Title: "Fig. 4 — mean per-op load imbalance ratio by NMP level",
		Note:  "paper: imbalance worsens with finer NMP granularity",
		Cols:  []string{"ranks", "rank-level", "bankgroup-level", "bank-level"},
	}
	// Table base slots of the contiguous layout.
	base := make([]int64, len(spec.Tables))
	var total int64
	for i, tab := range spec.Tables {
		base[i] = total
		total += tab.Rows
	}
	for _, ranks := range []int{2, 4, 8} {
		geo := dram.DDR5(ranks)
		g, err := trace.NewGenerator(spec, cfg.Seed)
		if err != nil {
			return nil, err
		}
		b := g.Batch(cfg.Batch)
		var rankImb, bgImb, bankImb []float64
		for _, s := range b {
			for _, op := range s {
				rankLoad := make([]int64, ranks)
				bgLoad := make([]int64, ranks*geo.BankGroups)
				bankLoad := make([]int64, geo.TotalBanks())
				for _, idx := range op.Indices {
					slot := base[op.Table] + idx
					fb := int(slot % int64(geo.TotalBanks()))
					bankLoad[fb]++
					bgLoad[fb/geo.Banks]++
					rankLoad[fb/geo.BanksPerRank()]++
				}
				rankImb = append(rankImb, stats.ImbalanceRatio(rankLoad))
				bgImb = append(bgImb, stats.ImbalanceRatio(bgLoad))
				bankImb = append(bankImb, stats.ImbalanceRatio(bankLoad))
			}
		}
		t.AddRow(fmt.Sprintf("%d", ranks),
			f2(stats.Mean(rankImb)), f2(stats.Mean(bgImb)), f2(stats.Mean(bankImb)))
	}
	return t, nil
}

// Fig5 reproduces the normalized speedup and theoretical internal bandwidth
// of the plain rank-, bank-group- and bank-level NMP designs for 2-, 4- and
// 8-rank channels. Speedups are normalized to the rank-level 2-rank point;
// bandwidth is node count times per-node burst cadence. The paper's
// observation: internal bandwidth scales far faster than delivered speedup.
func Fig5(cfg Config) (*Table, error) {
	spec := trace.CriteoKaggle(cfg.VecLen, cfg.Pooling)
	tm := dram.DDR5Timing()
	t := &Table{
		Title: "Fig. 5 — NMP level scaling: speedup vs internal bandwidth",
		Note:  "normalized to rank-level NMP at 2 ranks",
		Cols:  []string{"ranks", "level", "speedup", "internal-bw"},
	}
	type point struct {
		ranks   int
		level   string
		cycles  sim.Cycle
		bwBytes float64
	}
	var pts []point
	for _, ranks := range []int{2, 4, 8} {
		bcfg := baseline.Config{Spec: spec, Ranks: ranks}
		rank, err := baseline.NewRankNMP(bcfg)
		if err != nil {
			return nil, err
		}
		bg, err := baseline.NewTRiMG(bcfg)
		if err != nil {
			return nil, err
		}
		bank, err := baseline.NewTRiMB(bcfg, nil) // plain bank NMP, no replication
		if err != nil {
			return nil, err
		}
		g, err := trace.NewGenerator(spec, cfg.Seed)
		if err != nil {
			return nil, err
		}
		b := g.Batch(cfg.Batch)
		geo := dram.DDR5(ranks)
		bb := float64(geo.BurstBytes)
		for _, it := range []struct {
			name string
			sys  arch.System
			bw   float64
		}{
			{"rank", rank, float64(ranks) * bb / float64(tm.TCCDS)},
			{"bankgroup", bg, float64(ranks*geo.BankGroups) * bb / float64(tm.TCCDL)},
			{"bank", bank, float64(geo.TotalBanks()) * bb / float64(tm.TCCDL)},
		} {
			rs, err := it.sys.Run(b)
			if err != nil {
				return nil, fmt.Errorf("fig5 %s/%d ranks: %w", it.name, ranks, err)
			}
			pts = append(pts, point{ranks: ranks, level: it.name, cycles: rs.Cycles, bwBytes: it.bw})
		}
	}
	baseCycles := pts[0].cycles // rank-level at 2 ranks
	baseBW := pts[0].bwBytes
	for _, p := range pts {
		t.AddRow(fmt.Sprintf("%d", p.ranks), p.level,
			f2(float64(baseCycles)/float64(p.cycles)),
			f1(p.bwBytes/baseBW))
	}
	return t, nil
}

// Fig6 reproduces the command timeline of four successive accesses to two
// banks under (a) bank-group-level NMP, (b) bank-level NMP, and (c)
// subarray-parallel bank-level NMP, as an ASCII rendering of the recorded
// command trace.
func Fig6() (string, error) {
	type scenario struct {
		name     string
		consumer dram.Consumer
		salp     bool
	}
	scenarios := []scenario{
		{"(a) bank-group-level NMP (serial banks)", dram.ToBankGroupPE, false},
		{"(b) bank-level NMP (serial same-bank rows)", dram.ToBankPE, false},
		{"(c) subarray-parallel bank-level NMP", dram.ToBankPE, true},
	}
	var sb strings.Builder
	sb.WriteString("Fig. 6 — four successive accesses to two banks (2 rows each)\n")
	for _, sc := range scenarios {
		ch, err := dram.NewChannel(dram.DDR5(2), dram.DDR5Timing(), dram.NMPTwoStage)
		if err != nil {
			return "", err
		}
		ch.Record = true
		if sc.salp {
			ch.EnableSALP(0)
			ch.EnableSALP(1)
		}
		ctl, err := memctrl.New(ch, memctrl.LAS, memctrl.DefaultWindow)
		if err != nil {
			return "", err
		}
		rps := ch.Geo.RowsPerSubarray
		// Accesses 1..4: bank0/rowA, bank0/rowB, bank1/rowA, bank1/rowB,
		// with rowB in a different subarray than rowA.
		reqs := []memctrl.Request{
			{Loc: dram.Loc{Bank: 0, Row: 0}, Cols: 4, Consumer: sc.consumer},
			{Loc: dram.Loc{Bank: 0, Row: rps}, Cols: 4, Consumer: sc.consumer},
			{Loc: dram.Loc{Bank: 1, Row: 0}, Cols: 4, Consumer: sc.consumer},
			{Loc: dram.Loc{Bank: 1, Row: rps}, Cols: 4, Consumer: sc.consumer},
		}
		res, err := ctl.Drain(reqs)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&sb, "\n%s: finished at cycle %d\n", sc.name, res.Finish)
		sort.SliceStable(ch.Trace, func(a, b int) bool { return ch.Trace[a].At < ch.Trace[b].At })
		for _, ev := range ch.Trace {
			fmt.Fprintf(&sb, "  cycle %4d  %-3s bank %d row %5d (subarray %3d)",
				ev.At, ev.Kind, ev.Loc.Bank, ev.Loc.Row, ch.Geo.Subarray(ev.Loc.Row))
			if ev.Kind == "RD" {
				fmt.Fprintf(&sb, "  data done %d", ev.Done)
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String(), nil
}
