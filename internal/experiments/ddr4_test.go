package experiments

import (
	"strconv"
	"testing"
)

func TestExtDDR4(t *testing.T) {
	tb, err := ExtDDR4(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	ddr4us, _ := strconv.ParseFloat(tb.Rows[0][2], 64)
	ddr5us, _ := strconv.ParseFloat(tb.Rows[1][2], 64)
	if ddr5us >= ddr4us {
		t.Fatalf("DDR5 (%.2fus) not faster than DDR4 (%.2fus)", ddr5us, ddr4us)
	}
}
