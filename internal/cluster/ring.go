package cluster

import (
	"fmt"
	"math"
	"sort"
)

// Ring is a consistent-hash ring with weighted virtual nodes: node i
// places about Weights[i]*VNodes points on a 64-bit circle, and a key
// is owned by the first point clockwise of its hash. Replicas of a key
// are the next distinct nodes clockwise, so losing a node moves only
// its own arcs. The ring is immutable once built; rebalancing builds a
// new one (Placement is cheap to recompute).
type Ring struct {
	points []ringPoint // sorted by hash
	nodes  int
	seed   uint64
}

type ringPoint struct {
	hash uint64
	node int
}

// RingOptions configures NewRing.
type RingOptions struct {
	// VNodes is the number of virtual nodes per unit of weight
	// (default 64). More vnodes → smoother balance, larger ring.
	VNodes int
	// Weights scales each node's share of the ring (default all 1).
	// A node with weight 2 owns about twice the arc length.
	Weights []float64
	// Seed perturbs every ring hash, so different seeds give
	// independent placements of the same nodes (default 0).
	Seed uint64
}

// NewRing builds a ring over n nodes.
func NewRing(n int, opts RingOptions) (*Ring, error) {
	if n < 1 {
		return nil, fmt.Errorf("cluster: ring needs at least 1 node, got %d", n)
	}
	vnodes := opts.VNodes
	if vnodes == 0 {
		vnodes = 64
	}
	if vnodes < 1 {
		return nil, fmt.Errorf("cluster: %d vnodes", vnodes)
	}
	if opts.Weights != nil && len(opts.Weights) != n {
		return nil, fmt.Errorf("cluster: %d weights for %d nodes", len(opts.Weights), n)
	}
	r := &Ring{nodes: n, seed: opts.Seed}
	for i := 0; i < n; i++ {
		w := 1.0
		if opts.Weights != nil {
			w = opts.Weights[i]
			if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
				return nil, fmt.Errorf("cluster: node %d weight %v", i, w)
			}
		}
		count := int(math.Round(w * float64(vnodes)))
		if count < 1 {
			count = 1
		}
		for v := 0; v < count; v++ {
			h := mix64(opts.Seed ^ mix64(uint64(i)+1) ^ mix64(0x5bd1e995*uint64(v)+0x1b873593))
			r.points = append(r.points, ringPoint{hash: h, node: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].node < r.points[b].node
	})
	return r, nil
}

// Nodes reports how many nodes the ring was built over.
func (r *Ring) Nodes() int { return r.nodes }

// Points reports the ring size (total virtual nodes).
func (r *Ring) Points() int { return len(r.points) }

// Successors returns the first k distinct nodes clockwise of key's
// hash, primary first. k is clamped to the node count.
func (r *Ring) Successors(key string, k int) []int {
	if k > r.nodes {
		k = r.nodes
	}
	if k < 1 {
		k = 1
	}
	h := hashKey(r.seed, key)
	// First point with hash >= h, wrapping.
	i := sort.Search(len(r.points), func(j int) bool { return r.points[j].hash >= h })
	out := make([]int, 0, k)
	seen := make(map[int]bool, k)
	for j := 0; j < len(r.points) && len(out) < k; j++ {
		p := r.points[(i+j)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}

// hashKey hashes a key string with the ring seed (FNV-1a core, then a
// splitmix-style finalizer for avalanche).
func hashKey(seed uint64, s string) uint64 {
	h := uint64(14695981039346656037) ^ mix64(seed)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return mix64(h)
}

// mix64 is the splitmix64 finalizer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
