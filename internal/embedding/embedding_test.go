package embedding

import (
	"testing"
	"testing/quick"

	"recross/internal/trace"
)

func TestProceduralDeterministic(t *testing.T) {
	tab, err := NewProcedural(3, 1000, 16)
	if err != nil {
		t.Fatal(err)
	}
	a := tab.Row(500, make([]float32, 16))
	b := tab.Row(500, make([]float32, 16))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same row read twice differs")
		}
		if a[i] < -1 || a[i] >= 1 {
			t.Fatalf("element %g out of [-1,1)", a[i])
		}
	}
	c := tab.Row(501, make([]float32, 16))
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("adjacent rows identical")
	}
}

func TestProceduralDistinctTables(t *testing.T) {
	t1, _ := NewProcedural(1, 10, 8)
	t2, _ := NewProcedural(2, 10, 8)
	a := t1.Row(0, make([]float32, 8))
	b := t2.Row(0, make([]float32, 8))
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different tables produced identical rows")
	}
}

func TestProceduralBoundsPanic(t *testing.T) {
	tab, _ := NewProcedural(1, 10, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range row should panic")
		}
	}()
	tab.Row(10, make([]float32, 4))
}

func TestDenseSetGet(t *testing.T) {
	tab, err := NewDense(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.SetRow(2, []float32{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	got := tab.Row(2, make([]float32, 3))
	if got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("row = %v", got)
	}
	if err := tab.SetRow(9, []float32{1, 2, 3}); err == nil {
		t.Fatal("out-of-range SetRow should error")
	}
	if err := tab.SetRow(0, []float32{1}); err == nil {
		t.Fatal("wrong-length SetRow should error")
	}
}

func TestShapeValidation(t *testing.T) {
	if _, err := NewProcedural(1, 0, 4); err == nil {
		t.Error("zero rows should error")
	}
	if _, err := NewDense(4, 0); err == nil {
		t.Error("zero veclen should error")
	}
}

func TestLayerReduceMatchesManual(t *testing.T) {
	spec := trace.Uniform(2, 100, 4, 3)
	l, err := NewLayer(spec)
	if err != nil {
		t.Fatal(err)
	}
	op := trace.Op{
		Table:   1,
		Indices: []int64{5, 10, 5},
		Weights: []float32{1, 2, 0.5},
	}
	got, err := l.Reduce(op)
	if err != nil {
		t.Fatal(err)
	}
	tab := l.Table(1)
	r5 := tab.Row(5, make([]float32, 4))
	r10 := tab.Row(10, make([]float32, 4))
	for j := 0; j < 4; j++ {
		want := 1*r5[j] + 2*r10[j] + 0.5*r5[j]
		if diff := got[j] - want; diff > 1e-5 || diff < -1e-5 {
			t.Fatalf("element %d = %g, want %g", j, got[j], want)
		}
	}
}

func TestLayerReduceErrors(t *testing.T) {
	l, _ := NewLayer(trace.Uniform(1, 10, 4, 2))
	bad := []trace.Op{
		{Table: 5, Indices: []int64{0}, Weights: []float32{1}},
		{Table: 0, Indices: []int64{0, 1}, Weights: []float32{1}},
		{Table: 0, Indices: []int64{99}, Weights: []float32{1}},
	}
	for i, op := range bad {
		if _, err := l.Reduce(op); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestReduceSample(t *testing.T) {
	spec := trace.Uniform(3, 50, 4, 2)
	l, _ := NewLayer(spec)
	g, err := trace.NewGenerator(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := g.Sample()
	out, err := l.ReduceSample(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("got %d results, want 3", len(out))
	}
	for _, v := range out {
		if len(v) != 4 {
			t.Fatalf("result width %d, want 4", len(v))
		}
	}
}

// Property: Reduce is linear in the weights — scaling all weights scales
// the result.
func TestReduceLinearityProperty(t *testing.T) {
	l, _ := NewLayer(trace.Uniform(1, 100, 8, 4))
	f := func(seed int64, scaleRaw uint8) bool {
		scale := float32(scaleRaw%10) + 1
		g, err := trace.NewGenerator(trace.Uniform(1, 100, 8, 4), seed)
		if err != nil {
			return false
		}
		op := g.Sample()[0]
		base, err := l.Reduce(op)
		if err != nil {
			return false
		}
		scaled := op
		scaled.Weights = make([]float32, len(op.Weights))
		for i, w := range op.Weights {
			scaled.Weights[i] = w * scale
		}
		got, err := l.Reduce(scaled)
		if err != nil {
			return false
		}
		want := make([]float32, len(base))
		for i := range base {
			want[i] = base[i] * scale
		}
		return AlmostEqual(got, want, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAlmostEqual(t *testing.T) {
	if !AlmostEqual([]float32{1, 2}, []float32{1.0000001, 2}, 1e-5) {
		t.Fatal("near-equal should pass")
	}
	if AlmostEqual([]float32{1}, []float32{1, 2}, 1) {
		t.Fatal("length mismatch should fail")
	}
	if AlmostEqual([]float32{1}, []float32{2}, 0.5) {
		t.Fatal("distant values should fail")
	}
}

func BenchmarkProceduralRow(b *testing.B) {
	tab, _ := NewProcedural(1, 1<<20, 64)
	dst := make([]float32, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Row(int64(i)&(1<<20-1), dst)
	}
}

func TestReduceKinds(t *testing.T) {
	l, _ := NewLayer(trace.Uniform(1, 100, 4, 2))
	tab := l.Table(0)
	r5 := tab.Row(5, make([]float32, 4))
	r9 := tab.Row(9, make([]float32, 4))
	base := trace.Op{Table: 0, Indices: []int64{5, 9}, Weights: []float32{2, 3}}

	sum := base
	sum.Kind = trace.Sum
	got, err := l.Reduce(sum)
	if err != nil {
		t.Fatal(err)
	}
	for j := range got {
		if diff := got[j] - (r5[j] + r9[j]); diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("sum wrong at %d", j)
		}
	}

	mx := base
	mx.Kind = trace.Max
	got, err = l.Reduce(mx)
	if err != nil {
		t.Fatal(err)
	}
	for j := range got {
		want := r5[j]
		if r9[j] > want {
			want = r9[j]
		}
		if got[j] != want {
			t.Fatalf("max wrong at %d: %g vs %g", j, got[j], want)
		}
	}

	bad := base
	bad.Kind = trace.ReduceKind(9)
	if _, err := l.Reduce(bad); err == nil {
		t.Fatal("unknown kind should error")
	}
	// Sum/Max do not require weights.
	noW := trace.Op{Table: 0, Kind: trace.Sum, Indices: []int64{1, 2}}
	if _, err := l.Reduce(noW); err != nil {
		t.Fatal(err)
	}
}
