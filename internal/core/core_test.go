package core

import (
	"math"
	"testing"

	"recross/internal/baseline"
	"recross/internal/embedding"
	"recross/internal/nmp"
	"recross/internal/partition"
	"recross/internal/trace"
)

// miniSpec is a small skewed workload for fast tests.
func miniSpec() trace.ModelSpec {
	spec := trace.ModelSpec{Name: "mini-core"}
	for i := 0; i < 4; i++ {
		spec.Tables = append(spec.Tables, trace.TableSpec{
			Name: spec.Name + string(rune('a'+i)), Rows: 100000, VecLen: 64,
			Pooling: 8, Prob: 1, Skew: 1.0 + 0.1*float64(i),
		})
	}
	return spec
}

func miniConfig() Config {
	cfg := DefaultConfig(miniSpec())
	cfg.Batch = 4
	cfg.ProfileSamples = 300
	return cfg
}

func TestConfigValidation(t *testing.T) {
	good := miniConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Config){
		func(c *Config) { c.Ranks = 0 },
		func(c *Config) { c.NMPBankGroups = 9 },
		func(c *Config) { c.NMPBankGroups = 2; c.BankPEs = 9 },
		func(c *Config) { c.NMPBankGroups = 0; c.BankPEs = 1 },
		func(c *Config) { c.Batch = 0 },
		func(c *Config) { c.ProfileSamples = 0 },
		func(c *Config) { c.Spec = trace.ModelSpec{} },
	}
	for i, mutate := range cases {
		c := miniConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestRegionBankPartitionIsComplete(t *testing.T) {
	r, err := New(miniConfig())
	if err != nil {
		t.Fatal(err)
	}
	geo := r.Geometry()
	seen := map[int]int{}
	for region, banks := range r.regionBanks {
		for _, fb := range banks {
			if prev, dup := seen[fb]; dup {
				t.Fatalf("bank %d in regions %d and %d", fb, prev, region)
			}
			seen[fb] = region
		}
	}
	if len(seen) != geo.TotalBanks() {
		t.Fatalf("regions cover %d banks, want %d", len(seen), geo.TotalBanks())
	}
	// Default 1/4/4 per rank: R = 16 banks/rank, G = 12, B = 4.
	if len(r.regionBanks[RegionR]) != 32 || len(r.regionBanks[RegionG]) != 24 ||
		len(r.regionBanks[RegionB]) != 8 {
		t.Fatalf("region sizes %d/%d/%d, want 32/24/8",
			len(r.regionBanks[RegionR]), len(r.regionBanks[RegionG]), len(r.regionBanks[RegionB]))
	}
}

func TestRegionsCapacityRatio(t *testing.T) {
	r, err := New(miniConfig())
	if err != nil {
		t.Fatal(err)
	}
	regs := r.Regions()
	// Paper default R:G:B = 16:12:4.
	if regs[0].CapBytes*12 != regs[1].CapBytes*16 {
		t.Fatalf("R:G capacity not 16:12 (%d vs %d)", regs[0].CapBytes, regs[1].CapBytes)
	}
	if regs[1].CapBytes*4 != regs[2].CapBytes*12 {
		t.Fatalf("G:B capacity not 12:4 (%d vs %d)", regs[1].CapBytes, regs[2].CapBytes)
	}
	for _, reg := range regs {
		if reg.BW <= 0 {
			t.Fatalf("region %s has no bandwidth", reg.Name)
		}
	}
	// SALP off lowers the B-region bandwidth estimate.
	cfg := miniConfig()
	cfg.SAP = false
	cfg.Profile = r.Profile()
	r2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Regions()[2].BW >= regs[2].BW {
		t.Fatal("disabling SAP should lower the B-region bandwidth estimate")
	}
}

func TestExtremeConfigsBuildAndRun(t *testing.T) {
	// The §5.4 corner cases: c2 empties the G-region, c5 empties R and G.
	base := miniConfig()
	prof, err := partition.NewProfile(base.Spec, base.Seed, base.ProfileSamples)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := trace.NewGenerator(base.Spec, 3)
	b := g.Batch(2)
	for _, pes := range [][2]int{{4, 16}, {8, 32}, {8, 8}} {
		cfg := base
		cfg.Profile = prof
		cfg.NMPBankGroups, cfg.BankPEs = pes[0], pes[1]
		r, err := New(cfg)
		if err != nil {
			t.Fatalf("config %v: %v", pes, err)
		}
		if _, err := r.Run(b); err != nil {
			t.Fatalf("config %v run: %v", pes, err)
		}
	}
}

func TestRunStatsSanity(t *testing.T) {
	r, err := New(miniConfig())
	if err != nil {
		t.Fatal(err)
	}
	g, _ := trace.NewGenerator(miniSpec(), 3)
	b := g.Batch(4)
	rs, err := r.Run(b)
	if err != nil {
		t.Fatal(err)
	}
	lookups, _ := archCountBatch(b)
	// The encoder dedups repeated indices within an op, so the executed
	// lookups are bounded by (and close to) the raw count.
	if rs.Lookups > lookups || rs.Lookups < lookups/2 {
		t.Fatalf("lookups = %d, want within [%d, %d]", rs.Lookups, lookups/2, lookups)
	}
	if rs.Cycles <= 0 || rs.Imbalance < 1 || rs.Energy.Total() <= 0 {
		t.Fatalf("implausible stats: %+v", rs)
	}
	// The hot head always lands in the B-region; tiny workloads that fit
	// entirely in B may rationally skip R and G (their buses carry the
	// fixed psum-collection cost), so only the bank level is mandatory.
	if rs.DRAM.BurstsToBank == 0 {
		t.Fatalf("B-region idle: %+v", rs.DRAM)
	}
	if rs.DRAM.BurstsToHost != 0 {
		t.Fatal("no gather should cross to the host under NMP")
	}
}

func TestSALPEnablesSubarraySwitches(t *testing.T) {
	cfg := miniConfig()
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := trace.NewGenerator(miniSpec(), 3)
	b := g.Batch(4)
	withSAP, err := r.Run(b)
	if err != nil {
		t.Fatal(err)
	}
	if withSAP.DRAM.SubarraySwitch == 0 {
		t.Fatal("SALP banks recorded no subarray handovers")
	}
	cfg2 := miniConfig()
	cfg2.SAP = false
	cfg2.Profile = r.Profile()
	r2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	noSAP, err := r2.Run(b)
	if err != nil {
		t.Fatal(err)
	}
	if noSAP.DRAM.SubarraySwitch != 0 {
		t.Fatal("subarray switches recorded with SAP disabled")
	}
}

func TestAblationOrdering(t *testing.T) {
	// Base -> +SAP -> +BWP should be monotonically faster (Fig. 12); LAS
	// may be roughly neutral on small workloads, so it only must not
	// regress badly.
	prof, err := partition.NewProfile(miniSpec(), 12345, 500)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := trace.NewGenerator(miniSpec(), 3)
	b := g.Batch(8)
	run := func(sap, bwp, las bool) float64 {
		cfg := miniConfig()
		cfg.Profile = prof
		cfg.SAP, cfg.BWP, cfg.LAS = sap, bwp, las
		r, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := r.Run(b)
		if err != nil {
			t.Fatal(err)
		}
		return float64(rs.Cycles)
	}
	base := run(false, false, false)
	sap := run(true, false, false)
	bwp := run(true, true, false)
	las := run(true, true, true)
	t.Logf("base=%.0f +SAP=%.0f +BWP=%.0f +LAS=%.0f", base, sap, bwp, las)
	if sap >= base {
		t.Errorf("SAP did not help: %.0f -> %.0f", base, sap)
	}
	if bwp >= sap*1.05 {
		t.Errorf("BWP regressed: %.0f -> %.0f", sap, bwp)
	}
	if las >= bwp*1.10 {
		t.Errorf("LAS regressed badly: %.0f -> %.0f", bwp, las)
	}
}

func TestReduceBatchMatchesReference(t *testing.T) {
	spec := miniSpec()
	r, err := New(miniConfig())
	if err != nil {
		t.Fatal(err)
	}
	layer, err := embedding.NewLayer(spec)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := trace.NewGenerator(spec, 11)
	b := g.Batch(4)
	got, err := r.ReduceBatch(layer, b)
	if err != nil {
		t.Fatal(err)
	}
	for si, s := range b {
		want, err := layer.ReduceSample(s)
		if err != nil {
			t.Fatal(err)
		}
		for oi := range s {
			if !embedding.AlmostEqual(got[si][oi], want[oi], 1e-3) {
				t.Fatalf("sample %d op %d: cross-level reduction diverged", si, oi)
			}
		}
	}
}

func TestPEBreakdown(t *testing.T) {
	r, err := New(miniConfig())
	if err != nil {
		t.Fatal(err)
	}
	rank, bg, bank, salp := r.PEBreakdown()
	if rank != 1 || bg != 4 || bank != 4 || salp != 4 {
		t.Fatalf("PE breakdown = %d/%d/%d/%d, want 1/4/4/4", rank, bg, bank, salp)
	}
	if r.Name() != "recross" {
		t.Fatal("name wrong")
	}
}

// TestPaperOrdering is the headline integration test: on the full
// Criteo-Kaggle workload at paper parameters, the architectures must order
// as the paper's Fig. 9 geomeans do: CPU slowest, then TensorDIMM, RecNMP,
// TRiM-G, TRiM-B, with ReCross fastest.
func TestPaperOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale ordering in short mode")
	}
	spec := trace.CriteoKaggle(64, 80)
	prof, err := partition.NewProfile(spec, 12345, 2000)
	if err != nil {
		t.Fatal(err)
	}
	bcfg := baseline.Config{Spec: spec, Ranks: 2}
	g, err := trace.NewGenerator(spec, 777)
	if err != nil {
		t.Fatal(err)
	}
	b := g.Batch(32)

	cycles := map[string]float64{}
	{
		s, err := baseline.NewCPU(bcfg)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := s.Run(b)
		if err != nil {
			t.Fatal(err)
		}
		cycles["cpu"] = float64(rs.Cycles)
	}
	{
		s, err := baseline.NewTensorDIMM(bcfg)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := s.Run(b)
		if err != nil {
			t.Fatal(err)
		}
		cycles["tensordimm"] = float64(rs.Cycles)
	}
	{
		s, err := baseline.NewRecNMP(bcfg)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := s.Run(b)
		if err != nil {
			t.Fatal(err)
		}
		cycles["recnmp"] = float64(rs.Cycles)
	}
	{
		s, err := baseline.NewTRiMG(bcfg)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := s.Run(b)
		if err != nil {
			t.Fatal(err)
		}
		cycles["trim-g"] = float64(rs.Cycles)
	}
	{
		s, err := baseline.NewTRiMB(bcfg, prof.Hists)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := s.Run(b)
		if err != nil {
			t.Fatal(err)
		}
		cycles["trim-b"] = float64(rs.Cycles)
	}
	{
		cfg := DefaultConfig(spec)
		cfg.Profile = prof
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := s.Run(b)
		if err != nil {
			t.Fatal(err)
		}
		cycles["recross"] = float64(rs.Cycles)
	}
	for n, c := range cycles {
		t.Logf("%-11s %10.0f cycles  %.2fx over cpu", n, c, cycles["cpu"]/c)
	}
	// Strict ordering for the clearly separated tiers, with slack only at
	// the TRiM-B/ReCross boundary: in our reproduction those two are a
	// statistical tie at vector length 64 (the paper separates them 1.8x;
	// see EXPERIMENTS.md "systematic gaps"), with ReCross clearly ahead at
	// shorter vectors.
	order := []string{"cpu", "tensordimm", "recnmp", "trim-g", "trim-b"}
	for i := 0; i+1 < len(order); i++ {
		slow, fast := order[i], order[i+1]
		if cycles[fast] > cycles[slow]*1.02 {
			t.Errorf("%s (%.0f) should be faster than %s (%.0f)",
				fast, cycles[fast], slow, cycles[slow])
		}
	}
	if cycles["recross"] > cycles["trim-b"]*1.06 {
		t.Errorf("ReCross (%.0f) fell behind the TRiM-B tie band (%.0f)",
			cycles["recross"], cycles["trim-b"])
	}
	// ReCross must clearly beat the coarser NMPs and the CPU.
	if ratio := cycles["trim-g"] / cycles["recross"]; ratio < 1.05 {
		t.Errorf("ReCross over TRiM-G = %.2fx, want >= 1.05 (paper: 2.5x)", ratio)
	}
	if ratio := cycles["cpu"] / cycles["recross"]; ratio < 2.5 {
		t.Errorf("ReCross over CPU = %.2fx, want >= 2.5 (paper: 15.5x)", ratio)
	}
}

func archCountBatch(b trace.Batch) (int64, int64) {
	var lookups, ops int64
	for _, s := range b {
		for _, op := range s {
			ops++
			lookups += int64(len(op.Indices))
		}
	}
	return lookups, ops
}

func TestNodeLoadsCoverAllPEs(t *testing.T) {
	r, err := New(miniConfig())
	if err != nil {
		t.Fatal(err)
	}
	g, _ := trace.NewGenerator(miniSpec(), 3)
	rs, err := r.Run(g.Batch(2))
	if err != nil {
		t.Fatal(err)
	}
	// 2 rank PEs + 8 NMP bank groups + 8 SALP banks = 18 nodes.
	if len(rs.NodeLoads) != 18 {
		t.Fatalf("node loads cover %d PEs, want 18", len(rs.NodeLoads))
	}
	var sum int64
	for _, l := range rs.NodeLoads {
		if l < 0 {
			t.Fatal("negative node load")
		}
		sum += l
	}
	if sum == 0 {
		t.Fatal("no PE recorded load")
	}
}

func TestLevelStringsInRegions(t *testing.T) {
	r, err := New(miniConfig())
	if err != nil {
		t.Fatal(err)
	}
	regs := r.Regions()
	if regs[0].Level != nmp.LevelRank || regs[1].Level != nmp.LevelBankGroup || regs[2].Level != nmp.LevelBank {
		t.Fatal("region levels wrong")
	}
	if math.IsNaN(r.Decision().T) || r.Decision().T <= 0 {
		t.Fatal("decision estimate missing")
	}
}

func TestReduceBatchAllKinds(t *testing.T) {
	spec := miniSpec()
	r, err := New(miniConfig())
	if err != nil {
		t.Fatal(err)
	}
	layer, err := embedding.NewLayer(spec)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := trace.NewGenerator(spec, 23)
	b := g.Batch(2)
	// Rewrite op kinds: one table sums, one maxes, the rest weighted.
	for si := range b {
		for oi := range b[si] {
			switch oi % 3 {
			case 1:
				b[si][oi].Kind = trace.Sum
			case 2:
				b[si][oi].Kind = trace.Max
			}
		}
	}
	got, err := r.ReduceBatch(layer, b)
	if err != nil {
		t.Fatal(err)
	}
	for si, s := range b {
		for oi, op := range s {
			want, err := layer.Reduce(op)
			if err != nil {
				t.Fatal(err)
			}
			if !embedding.AlmostEqual(got[si][oi], want, 1e-3) {
				t.Fatalf("kind %v: cross-level reduction diverged at %d/%d", op.Kind, si, oi)
			}
		}
	}
}
