// Package stats provides the statistical utilities shared by the workload
// characterisation and the experiment harness: frequency histograms,
// cumulative-access curves (paper Fig. 3), load-imbalance ratios (paper
// Figs. 4 and 13), and small numeric helpers.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Histogram counts occurrences of integer keys (e.g. embedding row indices,
// or bank IDs). The zero value is ready to use.
type Histogram struct {
	counts map[int64]int64
	total  int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make(map[int64]int64)}
}

// Add increments the count of key by one.
func (h *Histogram) Add(key int64) { h.AddN(key, 1) }

// AddN increments the count of key by n.
func (h *Histogram) AddN(key int64, n int64) {
	if h.counts == nil {
		h.counts = make(map[int64]int64)
	}
	h.counts[key] += n
	h.total += n
}

// Total returns the sum of all counts.
func (h *Histogram) Total() int64 { return h.total }

// Distinct returns the number of distinct keys observed.
func (h *Histogram) Distinct() int { return len(h.counts) }

// Count returns the count recorded for key.
func (h *Histogram) Count(key int64) int64 { return h.counts[key] }

// SortedCounts returns all counts in descending order.
func (h *Histogram) SortedCounts() []int64 {
	out := make([]int64, 0, len(h.counts))
	for _, c := range h.counts {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] > out[j] })
	return out
}

// HotKeys returns the n most frequent keys in descending count order.
// Ties are broken by ascending key for determinism.
func (h *Histogram) HotKeys(n int) []int64 {
	type kv struct {
		k int64
		c int64
	}
	all := make([]kv, 0, len(h.counts))
	for k, c := range h.counts {
		all = append(all, kv{k, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].c != all[j].c {
			return all[i].c > all[j].c
		}
		return all[i].k < all[j].k
	})
	if n > len(all) {
		n = len(all)
	}
	keys := make([]int64, n)
	for i := 0; i < n; i++ {
		keys[i] = all[i].k
	}
	return keys
}

// CDF is a cumulative-access curve: CDF.At(p) is the fraction of all
// accesses absorbed by the hottest p fraction of distinct keys. This is the
// curve the paper plots in Fig. 3 and the access-distribution function f_i
// used by the bandwidth-aware partitioner (§4.3).
type CDF struct {
	// cum[i] is the fraction of observed accesses covered by the i+1
	// hottest keys.
	cum []float64
	// universe is the number of keys the curve is normalised over (the
	// table's row count, which may exceed the number of keys actually
	// observed in the trace).
	universe int
	// obsMass is the probability mass credited to the observed keys; the
	// remaining 1-obsMass (the Good-Turing unseen-mass estimate) ramps
	// linearly across the unobserved tail. 1 for unsmoothed curves.
	obsMass float64
}

// AccessCDF builds the cumulative-access curve of h over a universe of
// `universe` distinct keys. universe must be >= h.Distinct(); keys never
// observed contribute zero accesses (the long tail).
func AccessCDF(h *Histogram, universe int) (*CDF, error) {
	if universe < h.Distinct() {
		return nil, fmt.Errorf("stats: universe %d smaller than %d observed keys", universe, h.Distinct())
	}
	if universe == 0 {
		return nil, fmt.Errorf("stats: empty universe")
	}
	counts := h.SortedCounts()
	cum := make([]float64, len(counts))
	var run float64
	total := float64(h.Total())
	for i, c := range counts {
		run += float64(c)
		if total > 0 {
			cum[i] = run / total
		}
	}
	return &CDF{cum: cum, universe: universe, obsMass: 1}, nil
}

// AccessCDFSmoothed builds the cumulative-access curve with Good-Turing
// missing-mass smoothing: a finite profiling trace systematically misses
// tail keys that a longer run WILL draw, so the raw empirical curve
// overstates head concentration. The unseen mass is estimated as
// (singleton count)/(total draws) and spread uniformly over the unobserved
// keys; the observed curve is scaled down accordingly. This is what the
// bandwidth-aware partitioner consumes — without it the cold region's load
// is underestimated and the LP balance fails in live runs.
func AccessCDFSmoothed(h *Histogram, universe int) (*CDF, error) {
	c, err := AccessCDF(h, universe)
	if err != nil {
		return nil, err
	}
	if h.Total() == 0 || h.Distinct() >= universe {
		return c, nil
	}
	singles := int64(0)
	for _, n := range h.counts {
		if n == 1 {
			singles++
		}
	}
	unseen := float64(singles) / float64(h.Total())
	if unseen > 0.95 {
		unseen = 0.95
	}
	c.obsMass = 1 - unseen
	return c, nil
}

// At returns the fraction of accesses covered by the hottest p (in [0,1])
// fraction of the universe, interpolating linearly between ranks.
func (c *CDF) At(p float64) float64 {
	if p <= 0 || len(c.cum) == 0 {
		return 0
	}
	if p >= 1 {
		return 1
	}
	rank := p * float64(c.universe) // number of hottest keys included
	if rank >= float64(len(c.cum)) {
		// Past the observed keys: the unseen mass ramps linearly over
		// the unobserved tail (zero for unsmoothed curves).
		tail := float64(c.universe - len(c.cum))
		if tail <= 0 {
			return 1
		}
		return c.obsMass + (1-c.obsMass)*(rank-float64(len(c.cum)))/tail
	}
	i := int(rank)
	frac := rank - float64(i)
	lo := 0.0
	if i > 0 {
		lo = c.cum[i-1]
	}
	hi := c.cum[i]
	return (lo + frac*(hi-lo)) * c.obsMass
}

// Universe returns the key universe size the curve is normalised over.
func (c *CDF) Universe() int { return c.universe }

// Coverage returns, for each fraction in ps, the covered access share.
func (c *CDF) Coverage(ps []float64) []float64 {
	out := make([]float64, len(ps))
	for i, p := range ps {
		out[i] = c.At(p)
	}
	return out
}

// ImbalanceRatio measures load imbalance across memory nodes as the paper
// defines it (§3.1): the largest per-node load divided by the load of an
// ideally even distribution. A perfectly balanced load returns 1. An empty
// or zero load returns 1 (nothing to imbalance).
func ImbalanceRatio(loads []int64) float64 {
	if len(loads) == 0 {
		return 1
	}
	var max, sum int64
	for _, l := range loads {
		if l > max {
			max = l
		}
		sum += l
	}
	if sum == 0 {
		return 1
	}
	ideal := float64(sum) / float64(len(loads))
	return float64(max) / ideal
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of xs (all must be positive), or 0 for
// an empty slice.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation. xs need not be sorted; it is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	i := int(rank)
	frac := rank - float64(i)
	if i+1 >= len(s) {
		return s[i]
	}
	return s[i] + frac*(s[i+1]-s[i])
}

// MaxI64 returns the maximum of xs, or 0 for an empty slice.
func MaxI64(xs []int64) int64 {
	var m int64
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// SumI64 returns the sum of xs.
func SumI64(xs []int64) int64 {
	var s int64
	for _, x := range xs {
		s += x
	}
	return s
}
