package experiments

import (
	"fmt"
	"sync"

	"recross/internal/arch"
	"recross/internal/baseline"
	"recross/internal/core"
	"recross/internal/energy"
	"recross/internal/partition"
	"recross/internal/trace"
)

// Fig12 reproduces the optimization breakdown: ReCross-Base (no SAP, no
// BWP, no LAS, crude greedy partitioning), then +SAP, +BWP, +LAS, each as a
// speedup over the CPU baseline. Paper: 5.4x -> 9.3x -> 13.7x -> 14.4x.
func Fig12(cfg Config) (*Table, error) {
	spec := trace.CriteoKaggle(cfg.VecLen, cfg.Pooling)
	prof, err := partition.NewProfile(spec, cfg.ProfileSeed, cfg.ProfileSamples)
	if err != nil {
		return nil, err
	}
	cpu, err := baseline.NewCPU(baseline.Config{Spec: spec, Ranks: cfg.Ranks})
	if err != nil {
		return nil, err
	}
	g, err := trace.NewGenerator(spec, cfg.Seed)
	if err != nil {
		return nil, err
	}
	b := g.Batch(cfg.Batch)
	cpuStats, err := cpu.Run(b)
	if err != nil {
		return nil, err
	}

	variants := []struct {
		name          string
		sap, bwp, las bool
	}{
		{"ReCross-Base", false, false, false},
		{"+SAP", true, false, false},
		{"+BWP", true, true, false},
		{"+LAS (full)", true, true, true},
	}
	t := &Table{
		Title: "Fig. 12 — optimization breakdown (speedup over CPU)",
		Note:  "paper: Base 5.4x, +SAP 9.3x, +BWP 13.7x, +LAS 14.4x",
		Cols:  []string{"variant", "speedup", "imbalance", "row-hit-rate"},
	}
	for _, v := range variants {
		rcfg := core.DefaultConfig(spec)
		rcfg.Ranks = cfg.Ranks
		rcfg.Batch = cfg.Batch
		rcfg.Profile = prof
		rcfg.SAP, rcfg.BWP, rcfg.LAS = v.sap, v.bwp, v.las
		rc, err := core.New(rcfg)
		if err != nil {
			return nil, fmt.Errorf("fig12 %s: %w", v.name, err)
		}
		rs, err := rc.Run(b)
		if err != nil {
			return nil, fmt.Errorf("fig12 %s: %w", v.name, err)
		}
		hitRate := float64(rs.RowHits) / float64(rs.RowHits+rs.RowMisses)
		t.AddRow(v.name,
			f2(float64(cpuStats.Cycles)/float64(rs.Cycles)),
			f2(rs.Imbalance), f2(hitRate))
	}
	return t, nil
}

// Fig13 reproduces the load-imbalance ratio comparison of ReCross against
// the baselines (and ReCross without BWP, which the paper singles out as
// worse than TRiM-G).
func Fig13(cfg Config) (*Table, error) {
	set, err := NewArchSet(cfg)
	if err != nil {
		return nil, err
	}
	stats, err := set.RunAll()
	if err != nil {
		return nil, err
	}
	// ReCross without BWP for the extra bar.
	rcfg := core.DefaultConfig(set.Spec)
	rcfg.Ranks = cfg.Ranks
	rcfg.Batch = cfg.Batch
	rcfg.Profile = set.Profile
	rcfg.BWP = false
	noBWP, err := core.New(rcfg)
	if err != nil {
		return nil, err
	}
	b, err := set.Batch()
	if err != nil {
		return nil, err
	}
	noBWPStats, err := noBWP.Run(b)
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title: "Fig. 13 — load imbalance ratio (lower is better)",
		Note:  "paper: ReCross lowest; ReCross without BWP worse than TRiM-G",
		Cols:  []string{"architecture", "imbalance"},
	}
	for _, name := range ArchNames {
		t.AddRow(name, f2(stats[name].Imbalance))
	}
	t.AddRow("recross-noBWP", f2(noBWPStats.Imbalance))
	return t, nil
}

// Fig14 reproduces the configuration exploration: ReCross-d and the five
// c1..c5 alternatives of §5.4, reporting speedup over CPU, extra DRAM-chip
// area, and area efficiency (speedup per mm^2). Paper: more PEs barely help
// while area grows, so ReCross-d has the best area efficiency.
func Fig14(cfg Config) (*Table, error) {
	spec := trace.CriteoKaggle(cfg.VecLen, cfg.Pooling)
	prof, err := partition.NewProfile(spec, cfg.ProfileSeed, cfg.ProfileSamples)
	if err != nil {
		return nil, err
	}
	cpu, err := baseline.NewCPU(baseline.Config{Spec: spec, Ranks: cfg.Ranks})
	if err != nil {
		return nil, err
	}
	g, err := trace.NewGenerator(spec, cfg.Seed)
	if err != nil {
		return nil, err
	}
	b := g.Batch(cfg.Batch)
	cpuStats, err := cpu.Run(b)
	if err != nil {
		return nil, err
	}

	// Configurations: name, BG PEs per rank, bank PEs per rank (§5.4).
	configs := []struct {
		name         string
		nBGPE, nBank int
	}{
		{"ReCross-d (1/4/4, 16:12:4)", 4, 4},
		{"ReCross-c1 (1/4/8, 16:8:8)", 4, 8},
		{"ReCross-c2 (1/4/16, 16:0:16)", 4, 16},
		{"ReCross-c3 (1/8/8, 0:24:8)", 8, 8},
		{"ReCross-c4 (1/8/16, 0:16:16)", 8, 16},
		{"ReCross-c5 (1/8/32, 0:0:32)", 8, 32},
	}
	t := &Table{
		Title: "Fig. 14 — ReCross configuration exploration",
		Note:  "paper: extra PEs barely improve performance; ReCross-d is the area-efficiency sweet spot",
		Cols:  []string{"config", "speedup", "chip-area-mm2", "speedup/mm2"},
	}
	am := energy.DefaultAreaModel()
	type out struct {
		speed, area float64
	}
	results := make([]out, len(configs))
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for i, cc := range configs {
		run := func(i int, name string, nBGPE, nBank int) {
			rcfg := core.DefaultConfig(spec)
			rcfg.Ranks = cfg.Ranks
			rcfg.Batch = cfg.Batch
			rcfg.Profile = prof
			rcfg.NMPBankGroups = nBGPE
			rcfg.BankPEs = nBank
			rc, err := core.New(rcfg)
			var rs *arch.RunStats
			if err == nil {
				rs, err = rc.Run(b)
			}
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("fig14 %s: %w", name, err)
				}
				return
			}
			results[i] = out{
				speed: float64(cpuStats.Cycles) / float64(rs.Cycles),
				area:  am.ChipArea(nBGPE, nBank, nBank),
			}
		}
		if cfg.Parallel {
			wg.Add(1)
			go func(i int, cc struct {
				name         string
				nBGPE, nBank int
			}) {
				defer wg.Done()
				run(i, cc.name, cc.nBGPE, cc.nBank)
			}(i, cc)
		} else {
			run(i, cc.name, cc.nBGPE, cc.nBank)
		}
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	for i, cc := range configs {
		t.AddRow(cc.name, f2(results[i].speed), f2(results[i].area),
			f2(results[i].speed/results[i].area))
	}
	return t, nil
}
