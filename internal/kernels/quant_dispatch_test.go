package kernels

import (
	"math"
	"math/rand"
	"testing"
)

// The dispatched kernels (vectorized on capable CPUs) must be
// bit-identical to the portable generic loops on every input — including
// NaN, signed zeros, subnormals and odd tails. On machines without the
// vector paths these tests compare the generic code with itself and pass
// trivially.

// dispatchSpecials salts random test vectors with the values most likely
// to expose semantic drift between scalar and vector code.
var dispatchSpecials = []float32{
	0, float32(math.Copysign(0, -1)), 1, -1,
	float32(math.Inf(1)), float32(math.Inf(-1)), float32(math.NaN()),
	math.Float32frombits(1),          // smallest subnormal
	math.Float32frombits(0x7f7fffff), // largest finite
	65504, -65504, 65520, 6.1e-5, -6.1e-5,
}

func saltedRow(rng *rand.Rand, n int) []float32 {
	row := make([]float32, n)
	for i := range row {
		if rng.Intn(4) == 0 {
			row[i] = dispatchSpecials[rng.Intn(len(dispatchSpecials))]
		} else {
			row[i] = rng.Float32()*200 - 100
		}
	}
	return row
}

func requireBits(t *testing.T, name string, n int, got, want []float32) {
	t.Helper()
	for i := range want {
		if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
			// NaN payload/sign propagation through *arithmetic* is pinned
			// by neither IEEE 754 nor Go: when both addends are NaN, which
			// one survives depends on operand order, and the compiler may
			// commute a float add (codegen differs under -race, for
			// instance). Any-NaN vs any-NaN is therefore equal here;
			// NaN vs number, and every non-NaN bit pattern (signed zeros,
			// infs, subnormals), must still match exactly.
			g, w := got[i], want[i]
			if g != g && w != w {
				continue
			}
			t.Fatalf("%s n=%d lane %d: got %08x want %08x",
				name, n, i, math.Float32bits(got[i]), math.Float32bits(want[i]))
		}
	}
}

func TestKernelDispatchMatchesGeneric(t *testing.T) {
	if !useAVX2 && !useF16C {
		t.Log("no vector paths on this CPU; comparing generic with itself")
	}
	rng := rand.New(rand.NewSource(21))
	for n := 0; n <= 67; n++ {
		for trial := 0; trial < 8; trial++ {
			src := saltedRow(rng, n)
			acc := saltedRow(rng, n)
			w := rng.Float32()*4 - 2

			q16 := make([]uint16, n)
			QuantizeF16(q16, src)
			q8 := make([]uint8, n)
			scale, zero := QuantizeI8(q8, src)

			check := func(name string, disp, gen func(d []float32)) {
				got := append([]float32(nil), acc...)
				want := append([]float32(nil), acc...)
				disp(got)
				gen(want)
				requireBits(t, name, n, got, want)
			}
			check("DecodeF16",
				func(d []float32) { DecodeF16(d, q16) },
				func(d []float32) { decodeF16Generic(d, q16) })
			check("AddF16",
				func(d []float32) { AddF16(d, q16) },
				func(d []float32) { addF16Generic(d, q16) })
			check("AxpyF16",
				func(d []float32) { AxpyF16(d, q16, w) },
				func(d []float32) { axpyF16Generic(d, q16, w) })
			check("MaxF16",
				func(d []float32) { MaxF16(d, q16) },
				func(d []float32) { maxF16Generic(d, q16) })
			check("DecodeI8",
				func(d []float32) { DecodeI8(d, q8, scale, zero) },
				func(d []float32) { decodeI8Generic(d, q8, scale, zero) })
			check("AddI8",
				func(d []float32) { AddI8(d, q8, scale, zero) },
				func(d []float32) { addI8Generic(d, q8, scale, zero) })
			check("AxpyI8",
				func(d []float32) { AxpyI8(d, q8, w, scale, zero) },
				func(d []float32) { axpyI8Generic(d, q8, w, scale, zero) })
			check("MaxI8",
				func(d []float32) { MaxI8(d, q8, scale, zero) },
				func(d []float32) { maxI8Generic(d, q8, scale, zero) })
		}
	}
}

// TestDecodeF16DispatchExhaustive pins the dispatched single-value decode
// against the exhaustively-verified scalar F16ToF32 over every binary16
// bit pattern (NaNs compare by bits too: the hardware conversion must
// preserve quiet-NaN payloads exactly as the scalar path does).
func TestDecodeF16DispatchExhaustive(t *testing.T) {
	q := make([]uint16, 1<<16)
	for i := range q {
		q[i] = uint16(i)
	}
	dst := make([]float32, len(q))
	DecodeF16(dst, q)
	for i, h := range q {
		want := F16ToF32(h)
		if math.Float32bits(dst[i]) != math.Float32bits(want) {
			t.Fatalf("h=%04x: dispatched decode %08x, scalar %08x",
				h, math.Float32bits(dst[i]), math.Float32bits(want))
		}
	}
}
