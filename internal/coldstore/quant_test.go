package coldstore

import (
	"math"
	"math/rand"
	"testing"

	"recross/internal/kernels"
	"recross/internal/stats"
)

// Quantized page-format tests: a store opened at FP16/INT8 serves the
// canonical Decode(Encode(row)) value of every row — bit-identical to
// encoding the source row directly — with error against the fp32 source
// bounded by the codec parameters, and survives checksum repair and
// remapping exactly like the fp32 format.

func openQuantStore(t *testing.T, prec kernels.Precision, rows int64, vecLen int, cfg Config) (*Store, RowSource, *hookDev) {
	t.Helper()
	src := &testSource{id: 1, rows: rows, vecLen: vecLen}
	hd := &hookDev{}
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	cfg.Precision = prec
	prev := cfg.WrapDevice
	cfg.WrapDevice = func(d Device) Device {
		if prev != nil {
			d = prev(d)
		}
		hd.inner = d
		return hd
	}
	s, err := Open(cfg, []RowSource{src})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, src, hd
}

// canonicalRow computes the reference serving value: the source row
// passed once through the precision's codec.
func canonicalRow(prec kernels.Precision, src RowSource, idx int64, dst []float32) {
	raw := make([]float32, src.VecLen())
	src.Row(idx, raw)
	buf := make([]byte, prec.RowBytes(len(raw)))
	kernels.EncodeRow(prec, buf, raw)
	kernels.DecodeRow(prec, dst, buf)
}

func TestQuantizedReadRowCanonical(t *testing.T) {
	for _, prec := range []kernels.Precision{kernels.FP16, kernels.INT8} {
		s, src, _ := openQuantStore(t, prec, 3000, 48, Config{PageBytes: 4096})
		got := make([]float32, 48)
		want := make([]float32, 48)
		raw := make([]float32, 48)
		rng := rand.New(rand.NewSource(3))
		for trial := 0; trial < 400; trial++ {
			idx := rng.Int63n(3000)
			if !s.ReadRow(0, idx, got) {
				t.Fatalf("%v: row %d unavailable", prec, idx)
			}
			canonicalRow(prec, src, idx, want)
			if d := stats.MaxULPDistance(got, want); d != 0 {
				t.Fatalf("%v row %d: served row differs from canonical codec value (%d ULP)", prec, idx, d)
			}
			// And the codec error versus the fp32 source stays within the
			// derived bound (2^-11 relative for fp16; scale-grid for int8).
			src.Row(idx, raw)
			absMax := 0.0
			for _, v := range raw {
				if a := math.Abs(float64(v)); a > absMax {
					absMax = a
				}
			}
			var bound float64
			switch prec {
			case kernels.FP16:
				bound = math.Pow(2, -11)*absMax + math.Pow(2, -25)
			case kernels.INT8:
				q8 := make([]uint8, len(raw))
				scale, _ := kernels.QuantizeI8(q8, raw)
				bound = math.Abs(float64(scale))*(0.5+math.Pow(2, -13)) + math.Pow(2, -24)*absMax
			}
			if e := stats.MaxAbsError(got, raw); e > bound {
				t.Fatalf("%v row %d: codec error %g above derived bound %g", prec, idx, e, bound)
			}
		}
	}
}

func TestQuantizedRowsPerPage(t *testing.T) {
	// Smaller encoded rows must pack more rows per page: that is the whole
	// bandwidth case for the quantized cold tier.
	base, _, _ := openQuantStore(t, kernels.FP32, 1000, 64, Config{PageBytes: 16 << 10})
	f16, _, _ := openQuantStore(t, kernels.FP16, 1000, 64, Config{PageBytes: 16 << 10})
	i8, _, _ := openQuantStore(t, kernels.INT8, 1000, 64, Config{PageBytes: 16 << 10})
	if base.RowsPerPage() != 64 {
		t.Fatalf("fp32 rpp = %d, want 64", base.RowsPerPage())
	}
	if f16.RowsPerPage() != 128 {
		t.Fatalf("fp16 rpp = %d, want 128", f16.RowsPerPage())
	}
	if i8.RowsPerPage() != (16<<10)/72 { // 64 codes + 8 header bytes per row
		t.Fatalf("int8 rpp = %d, want %d", i8.RowsPerPage(), (16<<10)/72)
	}
}

// TestQuantizedChecksumRepair checks the CRC32C blocks cover the encoded
// bytes: flipped bits in a quantized page are caught at device-read time
// and the page is re-encoded bit-exactly from the source.
func TestQuantizedChecksumRepair(t *testing.T) {
	for _, prec := range []kernels.Precision{kernels.FP16, kernels.INT8} {
		s, src, hd := openQuantStore(t, prec, 500, 32, Config{
			PageBytes:  2048,
			CacheBytes: 2048, // one frame: rereads hit the device
			Prefetch:   -1,
		})
		got := make([]float32, 32)
		if !s.ReadRow(0, 7, got) {
			t.Fatal("populate read failed")
		}
		// Evict page 0 by touching a distant page, then corrupt device reads.
		far := int64(s.RowsPerPage() * 3)
		if !s.ReadRow(0, far, got) {
			t.Fatal("eviction read failed")
		}
		hd.setRead(func(page int64, dst []byte) error {
			err := hd.inner.ReadPage(page, dst)
			if err == nil && page == 0 {
				dst[3] ^= 0xff
			}
			return err
		})
		if !s.ReadRow(0, 7, got) {
			t.Fatalf("%v: read after corruption failed", prec)
		}
		hd.clearRead()
		st := s.Stats()
		if st.ChecksumFailures == 0 || st.Repairs == 0 {
			t.Fatalf("%v: corruption not detected/repaired: %+v", prec, st)
		}
		want := make([]float32, 32)
		canonicalRow(prec, src, 7, want)
		if stats.MaxULPDistance(got, want) != 0 {
			t.Fatalf("%v: repaired row is not the canonical codec value", prec)
		}
	}
}

func TestQuantizedReduceMatchesHost(t *testing.T) {
	// In-storage reduction over quantized pages must equal a host-side
	// scalar reduction over the same canonical decoded rows, bit for bit:
	// quantization error is representational, never path-dependent.
	for _, prec := range []kernels.Precision{kernels.FP16, kernels.INT8} {
		s, src, _ := openQuantStore(t, prec, 800, 24, Config{PageBytes: 2048})
		rng := rand.New(rand.NewSource(11))
		idx := make([]int64, 40)
		w := make([]float32, 40)
		for i := range idx {
			idx[i] = rng.Int63n(800)
			w[i] = rng.Float32()
		}
		row := make([]float32, 24)
		for kind := uint8(0); kind <= 2; kind++ {
			got := make([]float32, 24)
			if err := s.ReduceInto(got, 0, idx, w, kind); err != nil {
				t.Fatal(err)
			}
			want := make([]float32, 24)
			for k, ix := range idx {
				canonicalRow(prec, src, ix, row)
				switch kind {
				case 1:
					for i := range want {
						want[i] += row[i]
					}
				case 2:
					if k == 0 {
						copy(want, row)
					} else {
						for i := range want {
							if row[i] > want[i] {
								want[i] = row[i]
							}
						}
					}
				default:
					for i := range want {
						want[i] += w[k] * row[i]
					}
				}
			}
			if stats.MaxULPDistance(got, want) != 0 {
				t.Fatalf("%v kind %d: in-storage reduce differs from host reference", prec, kind)
			}
		}
	}
}

func TestQuantizedRemap(t *testing.T) {
	for _, prec := range []kernels.Precision{kernels.FP16, kernels.INT8} {
		s, src, _ := openQuantStore(t, prec, 600, 16, Config{PageBytes: 1024})
		got := make([]float32, 16)
		want := make([]float32, 16)
		counts := []RowCount{{Row: 550, Count: 100}, {Row: 3, Count: 50}}
		if err := s.Remap([][]RowCount{counts}); err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(5))
		for trial := 0; trial < 200; trial++ {
			idx := rng.Int63n(600)
			if !s.ReadRow(0, idx, got) {
				t.Fatalf("%v: row %d unavailable after remap", prec, idx)
			}
			canonicalRow(prec, src, idx, want)
			if stats.MaxULPDistance(got, want) != 0 {
				t.Fatalf("%v row %d: wrong bits after remap", prec, idx)
			}
		}
	}
}
